//! The NDlog evaluation engine.
//!
//! Two evaluation strategies share one semantic core, selected at runtime
//! via [`EvalStrategy`]:
//!
//! - [`EvalStrategy::Batch`] (the default) — *batch semi-naive iteration*:
//!   each fixpoint runs in rounds; a whole round's delta is joined at once
//!   against keyed hash indexes ([`crate::index`]) on the join columns,
//!   with per-relation stable/recent/delta partitions ([`crate::delta`])
//!   ensuring each new body combination fires exactly once per round.
//! - [`EvalStrategy::Pipelined`] — the strategy RapidNet uses (and the one
//!   the paper's provenance model assumes): every inserted or derived
//!   tuple becomes a *delta* that is joined, one tuple at a time, against
//!   full scans of the materialized state.
//!
//! Both strategies produce the same fixpoints and provenance-equivalent
//! derivations (`tests/differential.rs` proves this over generated
//! programs). Derived state carries support counts so deletions cascade
//! correctly (UNDERIVE/DISAPPEAR, §3.1); tables with declared primary keys
//! follow NDlog's replacement semantics.
//!
//! Event tables (`materialize(..., event, ...)`) are transient: their
//! tuples trigger rules at their instant of insertion but are never stored,
//! and derivations triggered by an event do not retract when the event
//! passes — this is exactly how a `PacketIn` installs a persistent
//! `FlowTable` entry.

use crate::batch::{self, RulePlan};
use crate::delta::{DeltaTracker, RelationDeltaStats};
use crate::index::IndexRegistry;
use crate::log::{ExecEvent, ExecLog, Time, TupleId, TupleKind, TupleRecord};
use crate::store::{AddOutcome, DropOutcome, Store};
use mpr_ndlog::ast::{AggKind, Atom, Expr, Rule, Term};
use mpr_ndlog::eval::{CountingFuncs, Env};
use mpr_ndlog::{Program, Schema, Tuple, Value};
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// How the engine propagates deltas to fixpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EvalStrategy {
    /// Per-tuple pipelined semi-naive: each delta joins against full table
    /// scans immediately. The original engine; kept as the differential
    /// baseline.
    Pipelined,
    /// Batch semi-naive: whole rounds of deltas join at once through keyed
    /// hash indexes, with stable/recent/delta partitions per relation.
    Batch,
    /// Sharded batch semi-naive: the same round loop as
    /// [`EvalStrategy::Batch`], but large rounds partition their pending
    /// delta by relation/switch key and enumerate joins across a scoped
    /// worker pool of `n` threads ([`crate::shard`]). Results are applied
    /// sequentially in canonical order, so fixpoints, logs and derivation
    /// counts are bit-identical to single-threaded batch. `Shards(1)` (or
    /// any `n` on a round below [`Options::shard_min_round`]) degrades to
    /// plain batch.
    Shards(usize),
}

/// Env-derived default, resolved exactly once per process.
static ENV_DEFAULT: OnceLock<EvalStrategy> = OnceLock::new();

/// Explicit [`EvalStrategy::set_global_default`] override, packed so a
/// single atomic carries the shard count: `0` = no override, else the low
/// byte is the variant code and the high bits the `Shards` worker count.
/// Keeping the override separate from the `OnceLock` means a racing lazy
/// env resolution can never clobber an explicit override — the bug the old
/// "read 0, resolve env, store" sequence had.
static OVERRIDE: AtomicU64 = AtomicU64::new(0);

fn encode(s: EvalStrategy) -> u64 {
    match s {
        EvalStrategy::Pipelined => 1,
        EvalStrategy::Batch => 2,
        EvalStrategy::Shards(n) => 3 | ((n as u64) << 8),
    }
}

fn decode(code: u64) -> Option<EvalStrategy> {
    match code & 0xff {
        1 => Some(EvalStrategy::Pipelined),
        2 => Some(EvalStrategy::Batch),
        3 => Some(EvalStrategy::Shards((code >> 8) as usize)),
        _ => None,
    }
}

impl EvalStrategy {
    /// The process-wide default used by [`Options::default`]. Resolved
    /// exactly once from the `MPR_EVAL_STRATEGY` environment variable
    /// (`pipelined`, `batch`, or `shardsN`, case-insensitive — see the
    /// [`std::str::FromStr`] impl), falling back to [`EvalStrategy::Batch`];
    /// an explicit [`EvalStrategy::set_global_default`] takes precedence
    /// and is never clobbered by the lazy env read, no matter how many
    /// threads race on first use.
    pub fn global_default() -> EvalStrategy {
        if let Some(s) = decode(OVERRIDE.load(Ordering::Acquire)) {
            return s;
        }
        *ENV_DEFAULT.get_or_init(|| {
            std::env::var("MPR_EVAL_STRATEGY")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(EvalStrategy::Batch)
        })
    }

    /// Override the process-wide default strategy (benchmark sweeps, the
    /// dual-strategy end-to-end tests). Engines already built keep the
    /// strategy they were built with.
    pub fn set_global_default(s: EvalStrategy) {
        OVERRIDE.store(encode(s), Ordering::Release);
    }

    /// `true` for the strategies built on the batch round loop (plans,
    /// keyed indexes, delta partitions): [`EvalStrategy::Batch`] and
    /// [`EvalStrategy::Shards`].
    pub fn is_batch(&self) -> bool {
        matches!(self, EvalStrategy::Batch | EvalStrategy::Shards(_))
    }

    /// Worker count for parallel round enumeration (1 = sequential).
    pub(crate) fn workers(&self) -> usize {
        match self {
            EvalStrategy::Shards(n) => (*n).max(1),
            _ => 1,
        }
    }
}

impl Default for EvalStrategy {
    fn default() -> Self {
        EvalStrategy::global_default()
    }
}

impl std::fmt::Display for EvalStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalStrategy::Pipelined => write!(f, "pipelined"),
            EvalStrategy::Batch => write!(f, "batch"),
            EvalStrategy::Shards(n) => write!(f, "shards{n}"),
        }
    }
}

/// Where (and whether) the tuple store journals its mutations.
///
/// [`Durability::Mem`] is the zero-cost default — exactly the
/// pre-durability engine. [`Durability::Wal`] attaches an
/// [`mpr_storage::WalBackend`] journal to the store: every effectful store
/// mutation is appended as a checksummed record, compacted periodically
/// into snapshots, and replayable after a crash via
/// [`crate::store::Store::recover`]. A WAL that fails to open or write
/// never takes evaluation down; the engine degrades to memory-only and
/// reports it through [`Engine::durability_degraded`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Durability {
    /// In-memory only: no journal, no recovery, no overhead.
    Mem,
    /// Write-ahead log under the configured directory.
    Wal(WalOptions),
}

/// Configuration for [`Durability::Wal`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalOptions {
    /// Parent directory for WAL state. Every engine journals into its own
    /// `engine-<n>` subdirectory (a process-wide counter), so concurrently
    /// built engines never share a log; [`Engine::wal_dir`] reports the
    /// resolved path.
    pub dir: std::path::PathBuf,
    /// fsync on every flush (off by default; see
    /// [`mpr_storage::WalConfig::fsync`]).
    pub fsync: bool,
    /// Install a compacted snapshot every this many journaled ops
    /// (0 = never compact).
    pub compact_every: usize,
}

impl WalOptions {
    /// WAL under `dir` with defaults: no fsync, compaction every 4096 ops.
    pub fn new(dir: impl Into<std::path::PathBuf>) -> Self {
        WalOptions { dir: dir.into(), fsync: false, compact_every: 4096 }
    }
}

/// Env-derived durability default, resolved exactly once per process (same
/// pattern as the [`EvalStrategy`] default).
static DURABILITY_ENV_DEFAULT: OnceLock<Durability> = OnceLock::new();

/// Process-wide counter handing each WAL-journaled engine its own subdir.
static WAL_ENGINE_SEQ: AtomicU64 = AtomicU64::new(0);

impl Durability {
    /// The process-wide default used by [`Options::default`]: the
    /// `MPR_DURABILITY` environment variable (`mem`, `wal`, or
    /// `wal:<dir>` — see the [`std::str::FromStr`] impl), falling back to
    /// [`Durability::Mem`].
    pub fn global_default() -> Durability {
        DURABILITY_ENV_DEFAULT
            .get_or_init(|| {
                std::env::var("MPR_DURABILITY")
                    .ok()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(Durability::Mem)
            })
            .clone()
    }
}

impl Default for Durability {
    fn default() -> Self {
        Durability::global_default()
    }
}

impl std::fmt::Display for Durability {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Durability::Mem => write!(f, "mem"),
            Durability::Wal(w) => write!(f, "wal:{}", w.dir.display()),
        }
    }
}

impl std::str::FromStr for Durability {
    type Err = String;

    /// Parse the `MPR_DURABILITY` syntax: `mem`, `wal:<dir>` / `wal=<dir>`,
    /// or bare `wal` (logs under the OS temp directory).
    fn from_str(s: &str) -> Result<Self, String> {
        let t = s.trim();
        if t.eq_ignore_ascii_case("mem") {
            return Ok(Durability::Mem);
        }
        if t.eq_ignore_ascii_case("wal") {
            return Ok(Durability::Wal(WalOptions::new(std::env::temp_dir().join("mpr-wal"))));
        }
        if let Some(rest) = t.strip_prefix("wal:").or_else(|| t.strip_prefix("wal=")) {
            if !rest.is_empty() {
                return Ok(Durability::Wal(WalOptions::new(rest)));
            }
        }
        Err(format!("unknown durability mode `{s}`"))
    }
}

impl std::str::FromStr for EvalStrategy {
    type Err = String;

    /// Parse the `MPR_EVAL_STRATEGY` syntax: `pipelined` (or `per-tuple`),
    /// `batch`, and `shardsN` / `shards:N` / `shards(N)` with `N ≥ 1`
    /// (clamped to 64 workers).
    fn from_str(s: &str) -> Result<Self, String> {
        let lower = s.trim().to_ascii_lowercase();
        match lower.as_str() {
            "pipelined" | "per-tuple" => return Ok(EvalStrategy::Pipelined),
            "batch" => return Ok(EvalStrategy::Batch),
            _ => {}
        }
        if let Some(rest) = lower.strip_prefix("shards") {
            let digits = rest.trim_start_matches([':', '(', '=']).trim_end_matches(')');
            if let Ok(n) = digits.parse::<usize>() {
                if n >= 1 {
                    return Ok(EvalStrategy::Shards(n.min(64)));
                }
            }
        }
        Err(format!("unknown evaluation strategy `{s}`"))
    }
}

/// Engine construction error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The program failed [`Program::validate`].
    InvalidProgram(String),
    /// A selection references a variable bound nowhere.
    UnboundSelectionVar {
        /// Rule id.
        rule: String,
        /// The offending variable.
        var: String,
    },
    /// An assignment uses a variable bound neither by the body nor by an
    /// earlier assignment.
    UnboundAssignVar {
        /// Rule id.
        rule: String,
        /// The offending variable.
        var: String,
    },
    /// Aggregate rules must have exactly one body predicate and the
    /// aggregate as the last head argument.
    BadAggregate {
        /// Rule id.
        rule: String,
        /// Why the aggregate is malformed.
        reason: String,
    },
    /// Aggregates may not range over event tables.
    AggregateOverEvent {
        /// Rule id.
        rule: String,
    },
    /// Body atoms cannot contain aggregate terms.
    AggInBody {
        /// Rule id.
        rule: String,
    },
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::InvalidProgram(m) => write!(f, "invalid program: {m}"),
            CompileError::UnboundSelectionVar { rule, var } => {
                write!(f, "rule `{rule}`: selection uses unbound variable `{var}`")
            }
            CompileError::UnboundAssignVar { rule, var } => {
                write!(f, "rule `{rule}`: assignment uses unbound variable `{var}`")
            }
            CompileError::BadAggregate { rule, reason } => {
                write!(f, "rule `{rule}`: malformed aggregate: {reason}")
            }
            CompileError::AggregateOverEvent { rule } => {
                write!(f, "rule `{rule}`: aggregate over event table")
            }
            CompileError::AggInBody { rule } => {
                write!(f, "rule `{rule}`: aggregate term in body")
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// Runtime failure (resource exhaustion — evaluation itself is total).
///
/// Every variant is a *budget*, not a corruption: the engine stays usable
/// for inspection after returning one (the frame stack is balanced, the
/// store and log are intact), callers just must not assume the fixpoint
/// completed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// The derivation budget was exceeded (runaway recursion guard).
    DerivationLimit(u64),
    /// The batch fixpoint exceeded [`Options::max_rounds`] semi-naive
    /// rounds in one externally driven step.
    RoundLimit(u64),
    /// The fixpoint exceeded the wall-clock budget
    /// ([`Options::time_budget`]) in one externally driven step.
    TimeBudget {
        /// The configured budget, in milliseconds.
        budget_ms: u64,
    },
    /// Arity of an inserted tuple does not match its table's prior use.
    ArityMismatch {
        /// Table name.
        table: String,
        /// Expected payload arity.
        expected: usize,
        /// Actual payload arity.
        got: usize,
    },
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::DerivationLimit(n) => write!(f, "derivation limit exceeded ({n})"),
            RuntimeError::RoundLimit(n) => write!(f, "fixpoint round limit exceeded ({n})"),
            RuntimeError::TimeBudget { budget_ms } => {
                write!(f, "fixpoint wall-clock budget exceeded ({budget_ms} ms)")
            }
            RuntimeError::ArityMismatch { table, expected, got } => {
                write!(f, "tuple arity mismatch for `{table}`: expected {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

/// Engine options.
#[derive(Debug, Clone)]
pub struct Options {
    /// Record provenance events (§5.4 measures the cost of turning this on).
    pub record_events: bool,
    /// Hard cap on total derivations, as a runaway guard.
    pub max_derivations: u64,
    /// Seed for `f_unique()` so runs are reproducible.
    pub unique_seed: i64,
    /// How deltas propagate to fixpoint (see [`EvalStrategy`]).
    pub strategy: EvalStrategy,
    /// Under [`EvalStrategy::Shards`], the minimum pending-delta count for
    /// a round to be enumerated in parallel; smaller rounds run the plain
    /// sequential batch loop, since thread handoff costs more than the
    /// round. Irrelevant to the other strategies.
    pub shard_min_round: usize,
    /// Hard cap on semi-naive rounds per externally driven step (batch
    /// strategies only — the pipelined loop is already bounded by
    /// [`Options::max_derivations`], since its queue only grows through
    /// counted firings). Surfaced as [`RuntimeError::RoundLimit`].
    pub max_rounds: u64,
    /// Wall-clock budget per externally driven step, surfaced as
    /// [`RuntimeError::TimeBudget`]. `None` (the default) disables the
    /// check entirely; note that a time budget makes *whether* a fixpoint
    /// completes machine-dependent, so determinism suites must leave it
    /// off. Checked at round boundaries (batch) and every 256 deltas
    /// (pipelined), so overruns are bounded by one round's work.
    pub time_budget: Option<std::time::Duration>,
    /// Fault-injection hook for the robustness tests: every shard worker
    /// panics immediately, forcing the contained-panic fallback path.
    #[doc(hidden)]
    pub inject_worker_panic: bool,
    /// Whether the tuple store journals mutations durably (see
    /// [`Durability`]). Defaults to the `MPR_DURABILITY` env setting,
    /// falling back to [`Durability::Mem`].
    pub durability: Durability,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            record_events: true,
            max_derivations: 50_000_000,
            unique_seed: 1000,
            strategy: EvalStrategy::default(),
            shard_min_round: 16,
            max_rounds: 1_000_000,
            time_budget: None,
            inject_worker_panic: false,
            durability: Durability::default(),
        }
    }
}

/// What changed during one externally driven step.
#[derive(Debug, Clone, Default)]
pub struct StepResult {
    /// Tuples that appeared (including transient event derivations).
    pub appeared: Vec<Tuple>,
    /// Tuples that disappeared.
    pub disappeared: Vec<Tuple>,
    /// Number of rule firings in this step.
    pub derivations: u64,
}

#[derive(Debug, Clone)]
pub(crate) struct AggSpec {
    kind: AggKind,
    /// Variable under the aggregate.
    value_var: String,
}

#[derive(Debug, Clone)]
pub(crate) struct CompiledRule {
    pub(crate) rule: Rule,
    /// Is the head an event table?
    head_is_event: bool,
    /// Variable sets per selection (for earliest evaluation).
    pub(crate) sel_vars: Vec<BTreeSet<String>>,
    /// Aggregate spec, if the head carries one.
    pub(crate) agg: Option<AggSpec>,
}

#[derive(Debug)]
struct DerivRecord {
    rule_idx: usize,
    head_tid: TupleId,
    head: Tuple,
    body_tids: Vec<TupleId>,
    origin: Value,
    active: bool,
}

#[derive(Debug, Default)]
struct AggGroup {
    /// Multiset of contributed values.
    values: BTreeMap<Value, usize>,
    /// Current emitted head tuple, if any.
    emitted: Option<Tuple>,
}

/// The engine. See the module docs for semantics.
pub struct Engine {
    pub(crate) rules: Vec<CompiledRule>,
    /// table → (rule index, body atom index) that the table can trigger.
    /// Shared so the drain loops can hold a table's list across `&mut self`
    /// firing calls without copying it per delta tuple.
    pub(crate) triggers: HashMap<String, std::sync::Arc<Vec<(usize, usize)>>>,
    pub(crate) store: Store,
    pub(crate) log: ExecLog,
    pub(crate) opts: Options,
    funcs: CountingFuncs,
    time: Time,
    next_tid: TupleId,
    records: Vec<DerivRecord>,
    by_body: HashMap<TupleId, Vec<usize>>,
    agg_groups: HashMap<(usize, Vec<Value>), AggGroup>,
    agg_contrib: HashMap<TupleId, Vec<(usize, Vec<Value>, Value)>>,
    total_derivations: u64,
    /// Which propagation discipline `drain` uses.
    strategy: EvalStrategy,
    /// Per-(rule, delta position) join plans (batch strategy only).
    /// Shared so a firing can hold its plan across nested fixpoints without
    /// cloning it per delta tuple.
    pub(crate) plans: std::sync::Arc<Vec<RulePlan>>,
    /// Keyed join-column indexes, kept in sync with the store (batch only).
    pub(crate) indexes: IndexRegistry,
    /// Per-table trigger lists grouped by pushed-down constant (batch
    /// only): a delta visits only the group matching its own value plus
    /// the residual triggers, instead of every rule the table appears in.
    pub(crate) batch_dispatch: HashMap<String, std::sync::Arc<batch::TriggerDispatch>>,
    /// Stable/recent/delta partitions per relation (batch only).
    pub(crate) deltas: DeltaTracker,
    /// Whether the program's selections are free of function calls, so a
    /// round's join matches can be enumerated on worker threads with a
    /// stateless function host without perturbing the `f_unique` stream
    /// (see [`crate::shard`]). Computed once at compile time.
    pub(crate) par_safe: bool,
    /// Copied from [`Options::shard_min_round`].
    pub(crate) shard_min_round: usize,
    /// Shard workers whose enumeration panicked and was contained (the
    /// affected units were recomputed sequentially). Atomic because the
    /// workers only hold `&Engine`.
    pub(crate) shard_panics: std::sync::atomic::AtomicU64,
    /// Resolved WAL directory when the store journals durably.
    wal_dir: Option<std::path::PathBuf>,
    /// Why the WAL failed to *open* (runtime write failures live in the
    /// store's journal instead; [`Engine::durability_degraded`] merges
    /// both).
    wal_open_error: Option<String>,
}

/// Does `e` contain any function call? Calls in *selections* would have to
/// run on worker threads during parallel enumeration, where the stateful
/// [`CountingFuncs`] host is unavailable; programs with such calls fall
/// back to sequential rounds. (Calls in assigns are fine — assigns only
/// ever run in the sequential apply step.)
fn expr_has_call(e: &Expr) -> bool {
    match e {
        Expr::Const(_) | Expr::Var(_) => false,
        Expr::Binary(_, l, r) => expr_has_call(l) || expr_has_call(r),
        Expr::Call(..) => true,
    }
}

impl Engine {
    /// Compile `program` with default options.
    pub fn new(program: &Program) -> Result<Self, CompileError> {
        Self::with_options(program, Options::default())
    }

    /// Compile `program`.
    pub fn with_options(program: &Program, opts: Options) -> Result<Self, CompileError> {
        program.validate().map_err(CompileError::InvalidProgram)?;
        let is_event = |table: &str| {
            program
                .catalog
                .get(table)
                .map(|s| !s.is_state())
                .unwrap_or(false)
        };
        let mut rules = Vec::new();
        let mut triggers: HashMap<String, Vec<(usize, usize)>> = HashMap::new();
        // (wrapped into Arcs once fully built, below)
        let mut store = Store::new();
        for s in program.catalog.iter() {
            store.declare(s.clone());
        }
        for (ri, rule) in program.rules.iter().enumerate() {
            // -- static checks --------------------------------------------
            let mut bound: BTreeSet<String> = rule.body_vars();
            for a in &rule.assigns {
                for v in a.expr.vars() {
                    if !bound.contains(&v) {
                        return Err(CompileError::UnboundAssignVar { rule: rule.id.clone(), var: v });
                    }
                }
                bound.insert(a.var.clone());
            }
            for s in &rule.sels {
                for v in s.vars() {
                    if !bound.contains(&v) {
                        return Err(CompileError::UnboundSelectionVar {
                            rule: rule.id.clone(),
                            var: v,
                        });
                    }
                }
            }
            for b in &rule.body {
                if b.has_agg() {
                    return Err(CompileError::AggInBody { rule: rule.id.clone() });
                }
            }
            // -- aggregates ------------------------------------------------
            let agg = if rule.is_aggregate() {
                let n_aggs =
                    rule.head.args.iter().filter(|t| matches!(t, Term::Agg(..))).count();
                if n_aggs != 1 {
                    return Err(CompileError::BadAggregate {
                        rule: rule.id.clone(),
                        reason: "exactly one aggregate argument is supported".into(),
                    });
                }
                match rule.head.args.last() {
                    Some(Term::Agg(kind, var)) => {
                        if rule.body.len() != 1 {
                            return Err(CompileError::BadAggregate {
                                rule: rule.id.clone(),
                                reason: "aggregate rules take exactly one body predicate".into(),
                            });
                        }
                        if is_event(&rule.body[0].table) {
                            return Err(CompileError::AggregateOverEvent { rule: rule.id.clone() });
                        }
                        Some(AggSpec { kind: *kind, value_var: var.clone() })
                    }
                    _ => {
                        return Err(CompileError::BadAggregate {
                            rule: rule.id.clone(),
                            reason: "the aggregate must be the last head argument".into(),
                        })
                    }
                }
            } else {
                None
            };
            // Aggregate heads are keyed on the group columns so updates
            // replace rather than accumulate.
            if agg.is_some() {
                let arity = rule.head.args.len();
                store.declare(Schema::state_keyed(
                    rule.head.table.clone(),
                    arity,
                    (0..arity - 1).collect(),
                ));
            }
            for (ai, atom) in rule.body.iter().enumerate() {
                triggers.entry(atom.table.clone()).or_default().push((ri, ai));
            }
            rules.push(CompiledRule {
                head_is_event: is_event(&rule.head.table),
                sel_vars: rule.sels.iter().map(|s| s.vars()).collect(),
                agg,
                rule: rule.clone(),
            });
        }
        let funcs = CountingFuncs::starting_at(opts.unique_seed);
        let strategy = opts.strategy;
        let par_safe = rules.iter().all(|cr| {
            cr.rule
                .sels
                .iter()
                .all(|s| !expr_has_call(&s.lhs) && !expr_has_call(&s.rhs))
        });
        let shard_min_round = opts.shard_min_round.max(1);
        let (plans, indexes, batch_dispatch) = if strategy.is_batch() {
            let mut registry = IndexRegistry::default();
            let plans = batch::build_plans(&rules, &mut registry);
            let dispatch = batch::build_dispatch(&triggers, &plans);
            (plans, registry, dispatch)
        } else {
            (Vec::new(), IndexRegistry::default(), HashMap::new())
        };
        // Attach the durability journal last, after every schema (catalog
        // and synthesized aggregate keys) is declared, so replay keys
        // tables exactly as this engine did. A WAL that cannot open
        // degrades to memory-only instead of failing construction.
        let mut wal_dir = None;
        let mut wal_open_error = None;
        if let Durability::Wal(w) = &opts.durability {
            let dir = w
                .dir
                .join(format!("engine-{}", WAL_ENGINE_SEQ.fetch_add(1, Ordering::Relaxed)));
            match mpr_storage::WalBackend::open(mpr_storage::WalConfig {
                dir: dir.clone(),
                fsync: w.fsync,
            }) {
                Ok(backend) => {
                    store.attach_journal(Box::new(backend), w.compact_every);
                    wal_dir = Some(dir);
                }
                Err(e) => wal_open_error = Some(format!("open {}: {e}", dir.display())),
            }
        }
        Ok(Engine {
            rules,
            triggers: triggers
                .into_iter()
                .map(|(t, l)| (t, std::sync::Arc::new(l)))
                .collect(),
            store,
            log: ExecLog::default(),
            opts,
            funcs,
            time: 0,
            next_tid: 0,
            records: Vec::new(),
            by_body: HashMap::new(),
            agg_groups: HashMap::new(),
            agg_contrib: HashMap::new(),
            total_derivations: 0,
            strategy,
            plans: std::sync::Arc::new(plans),
            indexes,
            batch_dispatch,
            deltas: DeltaTracker::default(),
            par_safe,
            shard_min_round,
            shard_panics: std::sync::atomic::AtomicU64::new(0),
            wal_dir,
            wal_open_error,
        })
    }

    /// Current logical time.
    pub fn now(&self) -> Time {
        self.time
    }

    /// The evaluation strategy this engine was built with.
    pub fn strategy(&self) -> EvalStrategy {
        self.strategy
    }

    /// Per-relation stable/recent partition sizes. Always empty under
    /// [`EvalStrategy::Pipelined`], which keeps no partitions.
    pub fn delta_stats(&self) -> Vec<RelationDeltaStats> {
        self.deltas.stats()
    }

    /// Total (index, tuple) entries across the keyed join indexes. Zero
    /// under [`EvalStrategy::Pipelined`], which registers no indexes.
    pub fn index_entries(&self) -> usize {
        self.indexes.entry_count()
    }

    /// The execution log.
    pub fn log(&self) -> &ExecLog {
        &self.log
    }

    /// Take ownership of the log, leaving an empty one.
    pub fn take_log(&mut self) -> ExecLog {
        std::mem::take(&mut self.log)
    }

    /// Total rule firings so far.
    pub fn total_derivations(&self) -> u64 {
        self.total_derivations
    }

    /// Shard workers whose enumeration panicked and was contained. Each
    /// contained panic costs only the recomputation of that worker's units
    /// on the sequential path; the fixpoint is unaffected.
    pub fn shard_worker_panics(&self) -> u64 {
        self.shard_panics.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// The tuple store (read-only; mutations go through the engine so
    /// provenance and durability stay consistent).
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// The directory this engine's WAL journal lives in, when the store
    /// journals durably ([`Durability::Wal`]) and the log opened cleanly.
    pub fn wal_dir(&self) -> Option<&std::path::Path> {
        self.wal_dir.as_deref()
    }

    /// Why durability shut itself off, if it did: either the WAL failed to
    /// open at construction, or a later write failed and the store's
    /// journal degraded to memory-only. `None` = healthy (or `Mem` mode).
    pub fn durability_degraded(&self) -> Option<String> {
        self.wal_open_error
            .clone()
            .or_else(|| self.store.durability_degraded().map(str::to_string))
    }

    /// `true` if the exact tuple is currently live.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.store.contains(t)
    }

    /// Live tuples of `table`, sorted.
    pub fn tuples(&self, table: &str) -> Vec<Tuple> {
        self.store.tuples(table)
    }

    /// Live tuples of `table` at `node`, sorted.
    pub fn tuples_at(&self, node: &Value, table: &str) -> Vec<Tuple> {
        let mut v: Vec<Tuple> =
            self.store.scan(table, Some(node)).map(|l| l.tuple.clone()).collect();
        v.sort();
        v
    }

    /// Number of live tuples across all tables.
    pub fn tuple_count(&self) -> usize {
        self.store.len()
    }

    /// Insert a base tuple and run to fixpoint.
    pub fn insert(&mut self, tuple: Tuple) -> Result<StepResult, RuntimeError> {
        self.time += 1;
        let mut result = StepResult::default();
        let schema = self.store.schema_for(&tuple.table, tuple.args.len());
        if schema.arity != tuple.args.len() {
            return Err(RuntimeError::ArityMismatch {
                table: tuple.table.clone(),
                expected: schema.arity,
                got: tuple.args.len(),
            });
        }
        let mut queue = VecDeque::new();
        if schema.is_state() {
            self.add_support(&tuple, true, None, &mut queue, &mut result)?;
        } else {
            // Transient event: exists for this instant only.
            let tid = self.mint(&tuple, TupleKind::Event);
            self.log_event(ExecEvent::InsertBase { time: self.time, tid });
            self.log_event(ExecEvent::Appear { time: self.time, tid });
            self.close_record(tid);
            self.log_event(ExecEvent::Disappear { time: self.time, tid });
            result.appeared.push(tuple.clone());
            queue.push_back((tid, tuple));
        }
        self.drain(queue, &mut result)?;
        self.store.journal_flush();
        Ok(result)
    }

    /// Insert many base tuples (fixpoint after each).
    pub fn insert_all<I: IntoIterator<Item = Tuple>>(
        &mut self,
        tuples: I,
    ) -> Result<StepResult, RuntimeError> {
        let mut total = StepResult::default();
        for t in tuples {
            let r = self.insert(t)?;
            total.appeared.extend(r.appeared);
            total.disappeared.extend(r.disappeared);
            total.derivations += r.derivations;
        }
        Ok(total)
    }

    /// Delete a base tuple (one unit of base support) and cascade.
    pub fn delete(&mut self, tuple: &Tuple) -> Result<StepResult, RuntimeError> {
        self.time += 1;
        let mut result = StepResult::default();
        match self.store.drop_support(tuple, true) {
            DropOutcome::Absent => {}
            DropOutcome::StillAlive => {
                if let Some(live) = self.store.get(tuple) {
                    let tid = live.tid;
                    self.log_event(ExecEvent::DeleteBase { time: self.time, tid });
                }
            }
            DropOutcome::Gone(tid) => {
                self.log_event(ExecEvent::DeleteBase { time: self.time, tid });
                self.kill(tid, tuple.clone(), &mut result)?;
            }
        }
        self.store.journal_flush();
        Ok(result)
    }

    // ------------------------------------------------------------------
    // internals

    fn mint(&mut self, tuple: &Tuple, kind: TupleKind) -> TupleId {
        let tid = self.next_tid;
        self.next_tid += 1;
        self.log.tuples.push(TupleRecord {
            tid,
            tuple: tuple.clone(),
            appear: self.time,
            disappear: None,
            kind,
        });
        tid
    }

    fn close_record(&mut self, tid: TupleId) {
        self.log.tuples[tid as usize].disappear = Some(self.time);
    }

    fn log_event(&mut self, e: ExecEvent) {
        if self.opts.record_events {
            self.log.events.push(e);
        }
    }

    /// Add one unit of support (base or derived) for a *state* tuple.
    fn add_support(
        &mut self,
        tuple: &Tuple,
        base: bool,
        derive: Option<(usize, Vec<TupleId>, Value)>,
        queue: &mut VecDeque<(TupleId, Tuple)>,
        result: &mut StepResult,
    ) -> Result<(), RuntimeError> {
        let kind = if base { TupleKind::Base } else { TupleKind::Derived };
        let mut fresh: Option<TupleId> = None;
        let outcome = {
            let next_tid = &mut self.next_tid;
            let pending = &mut fresh;
            self.store.add(tuple, base, &mut || {
                let tid = *next_tid;
                *next_tid += 1;
                *pending = Some(tid);
                tid
            })
        };
        // If a fresh tid was minted inside the store, register its record
        // (and index the new instance under the batch strategy).
        if let Some(tid) = fresh {
            debug_assert_eq!(tid as usize, self.log.tuples.len());
            self.log.tuples.push(TupleRecord {
                tid,
                tuple: tuple.clone(),
                appear: self.time,
                disappear: None,
                kind,
            });
            if self.strategy.is_batch() {
                self.indexes.insert(tid, tuple);
            }
        }
        match outcome {
            AddOutcome::New(tid) => {
                self.announce(tid, tuple, base, derive, result);
                queue.push_back((tid, tuple.clone()));
            }
            AddOutcome::SupportOnly(tid) => {
                // No visible change; log the derivation/insert itself.
                if base {
                    self.log_event(ExecEvent::InsertBase { time: self.time, tid });
                } else if let Some((rule_idx, body, origin)) = derive {
                    self.register_derivation(rule_idx, tid, tuple.clone(), body, origin);
                }
            }
            AddOutcome::Replaced { old, new } => {
                // The evicted instance dies with a full cascade, then the
                // replacement appears.
                let old_tuple = self.log.tuples[old as usize].tuple.clone();
                self.kill_replaced(old, old_tuple, result)?;
                self.announce(new, tuple, base, derive, result);
                queue.push_back((new, tuple.clone()));
            }
        }
        Ok(())
    }

    fn announce(
        &mut self,
        tid: TupleId,
        tuple: &Tuple,
        base: bool,
        derive: Option<(usize, Vec<TupleId>, Value)>,
        result: &mut StepResult,
    ) {
        if base {
            self.log_event(ExecEvent::InsertBase { time: self.time, tid });
        } else if let Some((rule_idx, body, origin)) = derive {
            self.register_derivation(rule_idx, tid, tuple.clone(), body, origin);
        }
        self.log_event(ExecEvent::Appear { time: self.time, tid });
        result.appeared.push(tuple.clone());
    }

    fn register_derivation(
        &mut self,
        rule_idx: usize,
        head_tid: TupleId,
        head: Tuple,
        body_tids: Vec<TupleId>,
        origin: Value,
    ) {
        self.log_event(ExecEvent::Derive {
            time: self.time,
            rule: self.rules[rule_idx].rule.id.clone(),
            head: head_tid,
            body: body_tids.clone(),
        });
        // Cross-node install: SEND/RECEIVE vertices.
        if head.loc != origin {
            self.log_event(ExecEvent::Send {
                time: self.time,
                from: origin.clone(),
                to: head.loc.clone(),
                tid: head_tid,
                positive: true,
            });
            self.log_event(ExecEvent::Receive {
                time: self.time,
                from: origin.clone(),
                to: head.loc.clone(),
                tid: head_tid,
                positive: true,
            });
        }
        // Only state body tuples can later retract the head.
        let state_body: Vec<TupleId> = body_tids
            .iter()
            .copied()
            .filter(|tid| self.log.tuples[*tid as usize].kind != TupleKind::Event)
            .collect();
        let rec = DerivRecord { rule_idx, head_tid, head, body_tids, origin, active: true };
        let idx = self.records.len();
        self.records.push(rec);
        for tid in state_body {
            self.by_body.entry(tid).or_default().push(idx);
        }
    }

    /// Kill a tuple instance that lost all support: cascade retractions.
    fn kill(&mut self, tid: TupleId, tuple: Tuple, result: &mut StepResult) -> Result<(), RuntimeError> {
        if self.strategy.is_batch() {
            self.indexes.remove(tid, &tuple);
            self.deltas.retire(&tuple.table, tid);
        }
        self.close_record(tid);
        self.log_event(ExecEvent::Disappear { time: self.time, tid });
        result.disappeared.push(tuple.clone());
        // Deactivate derivations that produced this tuple (it is gone).
        for rec in &mut self.records {
            if rec.active && rec.head_tid == tid {
                rec.active = false;
            }
        }
        // Retract derivations this tuple participated in.
        let dependents: Vec<usize> = self.by_body.remove(&tid).unwrap_or_default();
        for ridx in dependents {
            if !self.records[ridx].active {
                continue;
            }
            self.records[ridx].active = false;
            let (rule_idx, head_tid, head, body_tids, origin) = {
                let r = &self.records[ridx];
                (r.rule_idx, r.head_tid, r.head.clone(), r.body_tids.clone(), r.origin.clone())
            };
            self.log_event(ExecEvent::Underive {
                time: self.time,
                rule: self.rules[rule_idx].rule.id.clone(),
                head: head_tid,
                body: body_tids,
            });
            if head.loc != origin {
                self.log_event(ExecEvent::Send {
                    time: self.time,
                    from: origin.clone(),
                    to: head.loc.clone(),
                    tid: head_tid,
                    positive: false,
                });
                self.log_event(ExecEvent::Receive {
                    time: self.time,
                    from: origin,
                    to: head.loc.clone(),
                    tid: head_tid,
                    positive: false,
                });
            }
            match self.store.drop_support(&head, false) {
                DropOutcome::Gone(gone_tid) => {
                    debug_assert_eq!(gone_tid, head_tid);
                    self.kill(head_tid, head, result)?;
                }
                DropOutcome::StillAlive | DropOutcome::Absent => {}
            }
        }
        // Retract aggregate contributions.
        if let Some(contribs) = self.agg_contrib.remove(&tid) {
            for (rule_idx, group, value) in contribs {
                self.agg_retract(rule_idx, group, value, result)?;
            }
        }
        Ok(())
    }

    /// Kill an instance evicted by primary-key replacement (support is
    /// already gone from the store).
    fn kill_replaced(
        &mut self,
        tid: TupleId,
        tuple: Tuple,
        result: &mut StepResult,
    ) -> Result<(), RuntimeError> {
        self.kill(tid, tuple, result)
    }

    /// Propagate appearances until fixpoint, under the engine's strategy.
    pub(crate) fn drain(
        &mut self,
        queue: VecDeque<(TupleId, Tuple)>,
        result: &mut StepResult,
    ) -> Result<(), RuntimeError> {
        match self.strategy {
            EvalStrategy::Pipelined => self.drain_pipelined(queue, result),
            EvalStrategy::Batch | EvalStrategy::Shards(_) => self.drain_batch(queue, result),
        }
    }

    /// Pipelined propagation: pop one delta at a time and join it against
    /// full scans of the materialized state.
    fn drain_pipelined(
        &mut self,
        mut queue: VecDeque<(TupleId, Tuple)>,
        result: &mut StepResult,
    ) -> Result<(), RuntimeError> {
        // The step budget is [`Options::max_derivations`] (this queue only
        // grows through counted firings); the wall-clock budget is checked
        // here, every 256 deltas, so an overrun costs at most a few joins.
        let deadline = self
            .opts
            .time_budget
            .map(|b| (std::time::Instant::now() + b, b.as_millis() as u64));
        let mut steps: u64 = 0;
        while let Some((tid, tuple)) = queue.pop_front() {
            steps += 1;
            if let Some((d, budget_ms)) = deadline {
                // Checked at steps 1, 257, …: the first delta validates the
                // deadline cheaply (a zero budget fails deterministically,
                // `>=` regardless of clock granularity), then every 256.
                if steps & 0xFF == 1 && std::time::Instant::now() >= d {
                    return Err(RuntimeError::TimeBudget { budget_ms });
                }
            }
            // A tuple may have died while queued (replacement/cascade).
            let rec = &self.log.tuples[tid as usize];
            let still_relevant = rec.kind == TupleKind::Event || rec.disappear.is_none();
            if !still_relevant {
                continue;
            }
            let trigger_list = match self.triggers.get(&tuple.table) {
                Some(l) => std::sync::Arc::clone(l),
                None => continue,
            };
            for &(rule_idx, atom_idx) in trigger_list.iter() {
                if self.rules[rule_idx].agg.is_some() {
                    self.agg_add(rule_idx, tid, &tuple, &mut queue, result)?;
                } else {
                    self.fire(rule_idx, atom_idx, tid, &tuple, &mut queue, result)?;
                }
            }
        }
        Ok(())
    }

    /// Try all joins of `rule` with the delta bound to body atom `atom_idx`.
    fn fire(
        &mut self,
        rule_idx: usize,
        atom_idx: usize,
        delta_tid: TupleId,
        delta: &Tuple,
        queue: &mut VecDeque<(TupleId, Tuple)>,
        result: &mut StepResult,
    ) -> Result<(), RuntimeError> {
        let cr = &self.rules[rule_idx];
        let Some(env0) = match_atom(&cr.rule.body[atom_idx], delta, &Env::new()) else {
            return Ok(());
        };
        // Join the remaining atoms left to right (skipping the delta slot).
        let order: Vec<usize> =
            (0..cr.rule.body.len()).filter(|&i| i != atom_idx).collect();
        let n_sels = cr.rule.sels.len();
        let mut sel_done = vec![false; n_sels];
        // Evaluate selections satisfiable from the delta alone.
        if !self.eval_ready_sels(rule_idx, &env0, &mut sel_done) {
            return Ok(());
        }
        let mut matches: Vec<(Env, Vec<TupleId>, Vec<bool>)> =
            vec![(env0, vec![delta_tid], sel_done)];
        for &ai in &order {
            let mut next: Vec<(Env, Vec<TupleId>, Vec<bool>)> = Vec::new();
            for (env, tids, sels) in &matches {
                // Candidate tuples: restrict to a node if the atom's
                // location is already bound.
                let atom = &self.rules[rule_idx].rule.body[ai];
                let node_filter: Option<Value> = match &atom.loc {
                    Term::Const(v) => Some(v.clone()),
                    Term::Var(v) => env.get(v).cloned(),
                    Term::Agg(..) => None,
                };
                // `scan_ordered`, not `scan`: under primary-key replacement
                // (last-write-wins) the candidate visit order is visible in
                // the fixpoint, so it must not inherit hash-map iteration
                // order (the batch path gets the same guarantee from its
                // BTreeSet index buckets).
                let candidates: Vec<(TupleId, Tuple)> = self
                    .store
                    .scan_ordered(&atom.table, node_filter.as_ref())
                    .into_iter()
                    .map(|l| (l.tid, l.tuple.clone()))
                    .collect();
                for (ctid, ctuple) in candidates {
                    if let Some(env2) = match_atom(&self.rules[rule_idx].rule.body[ai], &ctuple, env)
                    {
                        let mut sels2 = sels.clone();
                        if !self.eval_ready_sels(rule_idx, &env2, &mut sels2) {
                            continue;
                        }
                        let mut tids2 = tids.clone();
                        tids2.push(ctid);
                        next.push((env2, tids2, sels2));
                    }
                }
            }
            matches = next;
            if matches.is_empty() {
                return Ok(());
            }
        }
        // Reorder body tids into body-atom order for the provenance log.
        for (env, tids, sels) in matches {
            let mut body_tids = vec![0; tids.len()];
            body_tids[atom_idx] = tids[0];
            for (slot, &ai) in order.iter().enumerate() {
                body_tids[ai] = tids[slot + 1];
            }
            self.finish_firing(rule_idx, env, sels, body_tids, delta, queue, result)?;
        }
        Ok(())
    }

    /// Evaluate every not-yet-done selection whose variables are all bound.
    /// Returns false if any evaluates to false (or errors).
    pub(crate) fn eval_ready_sels(&mut self, rule_idx: usize, env: &Env, done: &mut [bool]) -> bool {
        // The func host is taken out for the duration so the selections can
        // be evaluated in place (no per-candidate AST clone); nothing in
        // `Selection::eval` can reach back into the engine.
        let mut funcs = std::mem::take(&mut self.funcs);
        let mut ok = true;
        for i in 0..done.len() {
            if done[i] {
                continue;
            }
            let cr = &self.rules[rule_idx];
            let ready = cr.sel_vars[i].iter().all(|v| env.contains_key(v));
            if ready {
                match cr.rule.sels[i].eval(env, &mut funcs) {
                    Ok(true) => done[i] = true,
                    _ => {
                        ok = false;
                        break;
                    }
                }
            }
        }
        self.funcs = funcs;
        ok
    }

    /// Assignments, remaining selections, head construction, derivation.
    pub(crate) fn finish_firing(
        &mut self,
        rule_idx: usize,
        mut env: Env,
        mut sel_done: Vec<bool>,
        body_tids: Vec<TupleId>,
        delta: &Tuple,
        queue: &mut VecDeque<(TupleId, Tuple)>,
        result: &mut StepResult,
    ) -> Result<(), RuntimeError> {
        self.total_derivations += 1;
        result.derivations += 1;
        if self.total_derivations > self.opts.max_derivations {
            return Err(RuntimeError::DerivationLimit(self.opts.max_derivations));
        }
        let n_assigns = self.rules[rule_idx].rule.assigns.len();
        for i in 0..n_assigns {
            let assign = self.rules[rule_idx].rule.assigns[i].clone();
            let Ok(v) = assign.expr.eval(&env, &mut self.funcs) else {
                return Ok(()); // evaluation error → rule silently does not fire
            };
            match env.get(&assign.var) {
                Some(existing) if existing != &v => return Ok(()), // rebind mismatch
                _ => {
                    env.insert(assign.var.clone(), v);
                }
            }
            if !self.eval_ready_sels(rule_idx, &env, &mut sel_done) {
                return Ok(());
            }
        }
        if !sel_done.iter().all(|&d| d) {
            // A selection never became ready — compile checks make this
            // unreachable, but stay total.
            return Ok(());
        }
        // Build the head tuple.
        let head_atom = self.rules[rule_idx].rule.head.clone();
        let Some(head) = instantiate(&head_atom, &env) else {
            return Ok(());
        };
        let origin = delta.loc.clone();
        if self.rules[rule_idx].head_is_event {
            // Transient derived event.
            let tid = self.mint(&head, TupleKind::Event);
            self.log_event(ExecEvent::Derive {
                time: self.time,
                rule: self.rules[rule_idx].rule.id.clone(),
                head: tid,
                body: body_tids,
            });
            if head.loc != origin {
                self.log_event(ExecEvent::Send {
                    time: self.time,
                    from: origin.clone(),
                    to: head.loc.clone(),
                    tid,
                    positive: true,
                });
                self.log_event(ExecEvent::Receive {
                    time: self.time,
                    from: origin,
                    to: head.loc.clone(),
                    tid,
                    positive: true,
                });
            }
            self.log_event(ExecEvent::Appear { time: self.time, tid });
            self.close_record(tid);
            self.log_event(ExecEvent::Disappear { time: self.time, tid });
            result.appeared.push(head.clone());
            queue.push_back((tid, head));
        } else {
            self.add_support(&head, false, Some((rule_idx, body_tids, origin)), queue, result)?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // aggregates

    pub(crate) fn agg_add(
        &mut self,
        rule_idx: usize,
        delta_tid: TupleId,
        delta: &Tuple,
        queue: &mut VecDeque<(TupleId, Tuple)>,
        result: &mut StepResult,
    ) -> Result<(), RuntimeError> {
        let cr = &self.rules[rule_idx];
        let Some(env) = match_atom(&cr.rule.body[0], delta, &Env::new()) else {
            return Ok(());
        };
        let mut sel_done = vec![false; cr.rule.sels.len()];
        if !self.eval_ready_sels(rule_idx, &env, &mut sel_done) {
            return Ok(());
        }
        if !sel_done.iter().all(|&d| d) {
            return Ok(());
        }
        // Only aggregate triggers dispatch here; stay total regardless.
        let Some(spec) = self.rules[rule_idx].agg.clone() else {
            return Ok(());
        };
        let Some(value) = env.get(&spec.value_var).cloned() else {
            return Ok(());
        };
        let Some(group) = self.agg_group_key(rule_idx, &env) else {
            return Ok(());
        };
        let g = self.agg_groups.entry((rule_idx, group.clone())).or_default();
        *g.values.entry(value.clone()).or_insert(0) += 1;
        self.agg_contrib
            .entry(delta_tid)
            .or_default()
            .push((rule_idx, group.clone(), value));
        self.agg_emit(rule_idx, group, delta_tid, delta.loc.clone(), queue, result)
    }

    fn agg_retract(
        &mut self,
        rule_idx: usize,
        group: Vec<Value>,
        value: Value,
        result: &mut StepResult,
    ) -> Result<(), RuntimeError> {
        let mut queue = VecDeque::new();
        if let Some(g) = self.agg_groups.get_mut(&(rule_idx, group.clone())) {
            if let Some(n) = g.values.get_mut(&value) {
                *n -= 1;
                if *n == 0 {
                    g.values.remove(&value);
                }
            }
            if g.values.is_empty() {
                // Group vanished: evict the emitted tuple entirely.
                if let Some(old) = g.emitted.take() {
                    self.agg_groups.remove(&(rule_idx, group));
                    if let Some(tid) = self.store.evict(&old) {
                        self.kill(tid, old, result)?;
                    }
                }
            } else {
                let origin = group.first().cloned().unwrap_or(Value::Wild);
                self.agg_emit(rule_idx, group, 0, origin, &mut queue, result)?;
            }
        }
        self.drain(queue, result)
    }

    /// Group key: head location followed by the evaluated non-agg head args.
    fn agg_group_key(&mut self, rule_idx: usize, env: &Env) -> Option<Vec<Value>> {
        let head = self.rules[rule_idx].rule.head.clone();
        let mut key = Vec::with_capacity(head.args.len());
        key.push(resolve_term(&head.loc, env)?);
        for t in &head.args {
            match t {
                Term::Agg(..) => {}
                other => key.push(resolve_term(other, env)?),
            }
        }
        Some(key)
    }

    fn agg_emit(
        &mut self,
        rule_idx: usize,
        group: Vec<Value>,
        trigger_tid: TupleId,
        origin: Value,
        queue: &mut VecDeque<(TupleId, Tuple)>,
        result: &mut StepResult,
    ) -> Result<(), RuntimeError> {
        let Some(spec) = self.rules[rule_idx].agg.clone() else {
            return Ok(());
        };
        let g = match self.agg_groups.get(&(rule_idx, group.clone())) {
            Some(g) => g,
            None => return Ok(()),
        };
        let agg_value = match spec.kind {
            AggKind::Count => Value::Int(g.values.values().map(|&n| n as i64).sum()),
            AggKind::Min => g.values.keys().next().cloned().unwrap_or(Value::Wild),
            AggKind::Max => g.values.keys().next_back().cloned().unwrap_or(Value::Wild),
        };
        let table = self.rules[rule_idx].rule.head.table.clone();
        let loc = group[0].clone();
        let mut args: Vec<Value> = group[1..].to_vec();
        args.push(agg_value);
        let head = Tuple::new(table, loc, args);
        match self.agg_groups.get_mut(&(rule_idx, group)) {
            Some(g) if g.emitted.as_ref() == Some(&head) => return Ok(()), // unchanged
            Some(g) => g.emitted = Some(head.clone()),
            // The group was checked live above; stay total if it vanished.
            None => return Ok(()),
        }
        self.total_derivations += 1;
        result.derivations += 1;
        if self.total_derivations > self.opts.max_derivations {
            return Err(RuntimeError::DerivationLimit(self.opts.max_derivations));
        }
        self.add_support(&head, false, Some((rule_idx, vec![trigger_tid], origin)), queue, result)
    }
}

/// Unify an atom against a concrete tuple, extending `env`. Returns the
/// extended environment on success.
///
/// Unification runs in two passes: validation first (borrowing only), then
/// — only for a successful match — one environment clone plus the fresh
/// bindings. Failing candidates, the common case in a join loop, allocate
/// nothing.
pub fn match_atom(atom: &Atom, tuple: &Tuple, env: &Env) -> Option<Env> {
    if atom.table != tuple.table || atom.args.len() != tuple.args.len() {
        return None;
    }
    let mut fresh: Vec<(&str, &Value)> = Vec::new();
    unify_term(&atom.loc, &tuple.loc, env, &mut fresh)?;
    for (t, v) in atom.args.iter().zip(tuple.args.iter()) {
        unify_term(t, v, env, &mut fresh)?;
    }
    let mut out = env.clone();
    for (name, value) in fresh {
        out.insert(name.to_string(), value.clone());
    }
    Some(out)
}

fn unify_term<'a>(
    term: &'a Term,
    value: &'a Value,
    env: &Env,
    fresh: &mut Vec<(&'a str, &'a Value)>,
) -> Option<()> {
    match term {
        Term::Const(c) => {
            if c == value {
                Some(())
            } else {
                None
            }
        }
        Term::Var(v) => {
            if let Some(bound) = env.get(v) {
                return if bound == value { Some(()) } else { None };
            }
            // A variable can repeat within one atom; the repeat must agree
            // with the binding this very match introduced.
            if let Some(&(_, prev)) = fresh.iter().find(|(name, _)| *name == v) {
                return if prev == value { Some(()) } else { None };
            }
            fresh.push((v, value));
            Some(())
        }
        Term::Agg(..) => None,
    }
}

/// Instantiate a (non-aggregate) head atom under an environment.
pub fn instantiate(atom: &Atom, env: &Env) -> Option<Tuple> {
    let loc = resolve_term(&atom.loc, env)?;
    let mut args = Vec::with_capacity(atom.args.len());
    for t in &atom.args {
        args.push(resolve_term(t, env)?);
    }
    Some(Tuple { table: atom.table.clone(), loc, args })
}

pub(crate) fn resolve_term(term: &Term, env: &Env) -> Option<Value> {
    match term {
        Term::Const(c) => Some(c.clone()),
        Term::Var(v) => env.get(v).cloned(),
        Term::Agg(..) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpr_ndlog::parse_program;

    fn v(i: i64) -> Value {
        Value::Int(i)
    }

    fn fig2_engine() -> Engine {
        let p = parse_program(
            "fig2",
            r"
            materialize(PacketIn, event, 2, keys()).
            materialize(FlowTable, infinity, 2, keys(0)).
            materialize(WebLoadBalancer, infinity, 2, keys(0)).
            r1 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), WebLoadBalancer(@C,Hdr,Prt), Swi == 1.
            r2 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), Swi == 1, Hdr == 53, Prt := 2.
            r5 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), Swi == 2, Hdr == 80, Prt := 1.
            r7 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), Swi == 2, Hdr == 80, Prt := 2.
            ",
        )
        .unwrap();
        Engine::new(&p).unwrap()
    }

    #[test]
    fn event_triggers_persistent_derivation() {
        let mut e = fig2_engine();
        let r = e
            .insert(Tuple::new("PacketIn", Value::str("C"), vec![v(2), v(80)]))
            .unwrap();
        // r5 fires (Prt:=1), then r7 replaces it (same key Hdr=80 at node 2).
        assert!(r.derivations >= 2);
        let fts = e.tuples("FlowTable");
        assert_eq!(fts.len(), 1);
        // Last write wins under key replacement: r7's Prt=2.
        assert_eq!(fts[0], Tuple::new("FlowTable", v(2), vec![v(80), v(2)]));
        // The PacketIn event itself was not stored.
        assert!(e.tuples("PacketIn").is_empty());
    }

    #[test]
    fn join_with_state_table() {
        let mut e = fig2_engine();
        e.insert(Tuple::new("WebLoadBalancer", Value::str("C"), vec![v(80), v(7)])).unwrap();
        e.insert(Tuple::new("PacketIn", Value::str("C"), vec![v(1), v(80)])).unwrap();
        let fts = e.tuples("FlowTable");
        assert_eq!(fts, vec![Tuple::new("FlowTable", v(1), vec![v(80), v(7)])]);
    }

    #[test]
    fn state_deletion_cascades() {
        let src = r"
            materialize(A, infinity, 1, keys(0)).
            materialize(B, infinity, 1, keys(0)).
            materialize(C, infinity, 1, keys(0)).
            r1 B(@N,X) :- A(@N,X), X > 0.
            r2 C(@N,X) :- B(@N,X), X > 1.
        ";
        let p = parse_program("casc", src).unwrap();
        let mut e = Engine::new(&p).unwrap();
        let a = Tuple::new("A", v(1), vec![v(5)]);
        e.insert(a.clone()).unwrap();
        assert!(e.contains(&Tuple::new("B", v(1), vec![v(5)])));
        assert!(e.contains(&Tuple::new("C", v(1), vec![v(5)])));
        let r = e.delete(&a).unwrap();
        assert_eq!(r.disappeared.len(), 3);
        assert!(e.tuples("B").is_empty());
        assert!(e.tuples("C").is_empty());
    }

    #[test]
    fn support_counting_keeps_multiply_derived_tuples() {
        let src = r"
            materialize(A, infinity, 1, keys(0)).
            materialize(B, infinity, 1, keys(0)).
            materialize(Out, infinity, 1, keys(0)).
            r1 Out(@N,X) :- A(@N,X), X > 0.
            r2 Out(@N,X) :- B(@N,X), X > 0.
        ";
        let p = parse_program("sup", src).unwrap();
        let mut e = Engine::new(&p).unwrap();
        e.insert(Tuple::new("A", v(1), vec![v(5)])).unwrap();
        e.insert(Tuple::new("B", v(1), vec![v(5)])).unwrap();
        let out = Tuple::new("Out", v(1), vec![v(5)]);
        assert!(e.contains(&out));
        // Deleting one support keeps the tuple alive.
        e.delete(&Tuple::new("A", v(1), vec![v(5)])).unwrap();
        assert!(e.contains(&out));
        e.delete(&Tuple::new("B", v(1), vec![v(5)])).unwrap();
        assert!(!e.contains(&out));
    }

    #[test]
    fn multi_hop_recursion_reaches_fixpoint() {
        let src = r"
            materialize(Link, infinity, 1, keys(0)).
            materialize(Reach, infinity, 1, keys(0)).
            r1 Reach(@N,M) :- Link(@N,M), M != -1.
            r2 Reach(@N,M) :- Reach(@X,N2), Link(@N2,M), N2 == N2, N := N2, M != -1.
        ";
        // note: r2 is written oddly to exercise assigns; simpler transitive
        // closure below.
        let p = parse_program("tc", src).unwrap();
        assert!(Engine::new(&p).is_ok());

        let src = r"
            materialize(Link, infinity, 2, keys(0,1)).
            materialize(Reach, infinity, 2, keys(0,1)).
            r1 Reach(@C,X,Y) :- Link(@C,X,Y), X != Y.
            r2 Reach(@C,X,Z) :- Reach(@C,X,Y), Link(@C,Y,Z), X != Z.
        ";
        let p = parse_program("tc2", src).unwrap();
        let mut e = Engine::new(&p).unwrap();
        let c = Value::str("C");
        for (a, b) in [(1, 2), (2, 3), (3, 4)] {
            e.insert(Tuple::new("Link", c.clone(), vec![v(a), v(b)])).unwrap();
        }
        let reach = e.tuples("Reach");
        // 1→2,1→3,1→4,2→3,2→4,3→4
        assert_eq!(reach.len(), 6);
    }

    #[test]
    fn aggregate_count_updates_and_retracts() {
        let src = r"
            materialize(PredFunc, infinity, 2, keys(0,1)).
            materialize(PredFuncCount, infinity, 2, keys(0)).
            p2 PredFuncCount(@C,Rul,a_count<Tab>) :- PredFunc(@C,Rul,Tab).
        ";
        let p = parse_program("agg", src).unwrap();
        let mut e = Engine::new(&p).unwrap();
        let c = Value::str("C");
        e.insert(Tuple::new("PredFunc", c.clone(), vec![Value::str("r1"), Value::str("T1")]))
            .unwrap();
        e.insert(Tuple::new("PredFunc", c.clone(), vec![Value::str("r1"), Value::str("T2")]))
            .unwrap();
        e.insert(Tuple::new("PredFunc", c.clone(), vec![Value::str("r2"), Value::str("T1")]))
            .unwrap();
        assert_eq!(
            e.tuples("PredFuncCount"),
            vec![
                Tuple::new("PredFuncCount", c.clone(), vec![Value::str("r1"), v(2)]),
                Tuple::new("PredFuncCount", c.clone(), vec![Value::str("r2"), v(1)]),
            ]
        );
        // Retraction updates the count.
        e.delete(&Tuple::new("PredFunc", c.clone(), vec![Value::str("r1"), Value::str("T2")]))
            .unwrap();
        assert!(e.contains(&Tuple::new("PredFuncCount", c.clone(), vec![Value::str("r1"), v(1)])));
        // Emptying the group evicts the count tuple.
        e.delete(&Tuple::new("PredFunc", c.clone(), vec![Value::str("r1"), Value::str("T1")]))
            .unwrap();
        assert_eq!(e.tuples("PredFuncCount").len(), 1);
    }

    #[test]
    fn send_receive_logged_for_remote_heads() {
        let mut e = fig2_engine();
        e.insert(Tuple::new("PacketIn", Value::str("C"), vec![v(2), v(80)])).unwrap();
        let sends: Vec<_> = e
            .log()
            .events
            .iter()
            .filter(|ev| matches!(ev, ExecEvent::Send { positive: true, .. }))
            .collect();
        assert!(!sends.is_empty(), "FlowTable install should ship C→switch");
    }

    #[test]
    fn provenance_recording_can_be_disabled() {
        let p = parse_program(
            "t",
            "materialize(A, infinity, 1, keys(0)).\nmaterialize(B, infinity, 1, keys(0)).\nr1 B(@N,X) :- A(@N,X), X > 0.",
        )
        .unwrap();
        let mut e = Engine::with_options(
            &p,
            Options { record_events: false, ..Options::default() },
        )
        .unwrap();
        e.insert(Tuple::new("A", v(1), vec![v(5)])).unwrap();
        assert!(e.log().events.is_empty());
        assert!(e.contains(&Tuple::new("B", v(1), vec![v(5)])));
    }

    #[test]
    fn derivation_limit_guards_runaway_rules() {
        // Infinite generator: each Out(k) derives Out(k+1).
        let src = r"
            materialize(Seed, infinity, 1, keys(0)).
            materialize(Out, infinity, 1, keys(0)).
            r1 Out(@N,X) :- Seed(@N,X), X > 0.
            r2 Out(@N,Y) :- Out(@N,X), X > 0, Y := X + 1.
        ";
        let p = parse_program("loop", src).unwrap();
        let mut e = Engine::with_options(
            &p,
            Options { max_derivations: 1000, ..Options::default() },
        )
        .unwrap();
        let err = e.insert(Tuple::new("Seed", v(1), vec![v(1)])).unwrap_err();
        assert_eq!(err, RuntimeError::DerivationLimit(1000));
    }

    #[test]
    fn compile_rejects_unbound_vars() {
        let p = parse_program("bad", "r1 B(@N,X) :- A(@N,X), Zz == 1.").unwrap();
        assert!(matches!(
            Engine::new(&p),
            Err(CompileError::UnboundSelectionVar { .. })
        ));
        let p = parse_program("bad2", "r1 B(@N,X) :- A(@N,X), X := Qq + 1.").unwrap();
        // X is bound by the body; Qq is not.
        assert!(matches!(Engine::new(&p), Err(CompileError::UnboundAssignVar { .. })));
    }

    #[test]
    fn compile_rejects_bad_aggregates() {
        let p = parse_program("bad", "r1 B(@N,a_count<X>,Y) :- A(@N,X,Y).").unwrap();
        assert!(matches!(Engine::new(&p), Err(CompileError::BadAggregate { .. })));
        let p =
            parse_program("bad2", "r1 B(@N,a_count<X>) :- A(@N,X,Y), C(@N,X,Y).").unwrap();
        assert!(matches!(Engine::new(&p), Err(CompileError::BadAggregate { .. })));
        let p = parse_program(
            "bad3",
            "materialize(A, event, 2, keys()).\nr1 B(@N,a_count<X>) :- A(@N,X,Y).",
        )
        .unwrap();
        assert!(matches!(Engine::new(&p), Err(CompileError::AggregateOverEvent { .. })));
    }

    #[test]
    fn arity_mismatch_on_insert() {
        let p = parse_program("t", "materialize(A, infinity, 2, keys(0)).\nr1 B(@N,X) :- A(@N,X,Y), X > 0.").unwrap();
        let mut e = Engine::new(&p).unwrap();
        let err = e.insert(Tuple::new("A", v(1), vec![v(5)])).unwrap_err();
        assert!(matches!(err, RuntimeError::ArityMismatch { .. }));
    }

    #[test]
    fn log_records_full_lifecycle() {
        let mut e = fig2_engine();
        e.insert(Tuple::new("PacketIn", Value::str("C"), vec![v(2), v(80)])).unwrap();
        let log = e.log();
        assert!(log.events.iter().any(|ev| matches!(ev, ExecEvent::InsertBase { .. })));
        assert!(log.events.iter().any(|ev| matches!(ev, ExecEvent::Derive { .. })));
        assert!(log.events.iter().any(|ev| matches!(ev, ExecEvent::Appear { .. })));
        // Event tuple has an instantaneous lifetime.
        let ev_rec = &log.tuples[0];
        assert_eq!(ev_rec.kind, TupleKind::Event);
        assert_eq!(ev_rec.disappear, Some(ev_rec.appear));
    }

    #[test]
    fn strategy_parse_and_display() {
        assert_eq!("pipelined".parse(), Ok(EvalStrategy::Pipelined));
        assert_eq!("PER-TUPLE".parse(), Ok(EvalStrategy::Pipelined));
        assert_eq!("Batch".parse(), Ok(EvalStrategy::Batch));
        assert_eq!("shards4".parse(), Ok(EvalStrategy::Shards(4)));
        assert_eq!("shards:2".parse(), Ok(EvalStrategy::Shards(2)));
        assert_eq!("shards(8)".parse(), Ok(EvalStrategy::Shards(8)));
        // Clamped to 64 workers; zero and garbage are rejected.
        assert_eq!("shards9999".parse(), Ok(EvalStrategy::Shards(64)));
        assert!("shards0".parse::<EvalStrategy>().is_err());
        assert!("turbo".parse::<EvalStrategy>().is_err());
        for s in [EvalStrategy::Pipelined, EvalStrategy::Batch, EvalStrategy::Shards(6)] {
            assert_eq!(s.to_string().parse(), Ok(s));
        }
    }

    #[test]
    fn strategy_override_roundtrip() {
        for s in [EvalStrategy::Pipelined, EvalStrategy::Shards(5), EvalStrategy::Batch] {
            assert_eq!(super::decode(super::encode(s)), Some(s));
        }
        assert_eq!(super::decode(0), None);
    }

    /// The satellite-1 regression: many threads hitting first use of the
    /// global default must all observe the same strategy (the old
    /// read-then-store lazy init let a racing `set_global_default` be
    /// clobbered by a concurrent env resolution). This test only *reads*
    /// the default so it cannot contaminate other tests in the process.
    #[test]
    fn global_default_concurrent_first_use_is_consistent() {
        let results: Vec<EvalStrategy> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..16)
                .map(|_| scope.spawn(EvalStrategy::global_default))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(results.windows(2).all(|w| w[0] == w[1]), "split default: {results:?}");
    }

    #[test]
    fn shards_strategy_reaches_same_fixpoint_as_batch() {
        let run = |strategy| {
            let p = parse_program(
                "t",
                "materialize(A, infinity, 2, keys(0,1)).\n\
                 materialize(B, infinity, 2, keys(0,1)).\n\
                 r1 B(@N,X,Y) :- A(@N,X,Y), X > 0.",
            )
            .unwrap();
            let mut e = Engine::with_options(
                &p,
                Options { strategy, shard_min_round: 1, ..Options::default() },
            )
            .unwrap();
            for x in [3, -1, 7, 2] {
                e.insert(Tuple::new("A", v(1), vec![v(x), v(x + 1)])).unwrap();
            }
            (e.tuples("B"), e.total_derivations())
        };
        assert_eq!(run(EvalStrategy::Batch), run(EvalStrategy::Shards(2)));
    }
}
