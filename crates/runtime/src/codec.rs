//! The shared little-endian binary codec under every durable artifact:
//! WAL op records and store snapshots ([`crate::journal`]) and provenance
//! graph snapshots (`mpr_provenance::graph`).
//!
//! Writers are plain `put_*` helpers appending to a `Vec<u8>`; reads go
//! through [`Reader`], a bounds-checked cursor that returns an error on
//! truncated or malformed input — never a panic — so corrupt bytes from a
//! torn log surface as typed recovery losses upstream.
//!
//! The encoding is canonical: a value has exactly one byte representation
//! (length-prefixed strings, tagged values, fixed-width integers), which is
//! what lets snapshot writers promise "identical state ⇒ identical bytes"
//! by just sorting their inputs.

use mpr_ndlog::{Persistence, Schema, Tuple, Value};

/// Append a `u32`, little-endian.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u64`, little-endian.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append a length-prefixed UTF-8 string.
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// Append a tagged [`Value`] (0 = Int, 1 = Str, 2 = Bool, 3 = Wild).
pub fn put_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Int(i) => {
            buf.push(0);
            buf.extend_from_slice(&i.to_le_bytes());
        }
        Value::Str(s) => {
            buf.push(1);
            put_str(buf, s);
        }
        Value::Bool(b) => {
            buf.push(2);
            buf.push(u8::from(*b));
        }
        Value::Wild => buf.push(3),
    }
}

/// Append a [`Tuple`] (table, location, arg count, args).
pub fn put_tuple(buf: &mut Vec<u8>, t: &Tuple) {
    put_str(buf, &t.table);
    put_value(buf, &t.loc);
    put_u32(buf, t.args.len() as u32);
    for a in &t.args {
        put_value(buf, a);
    }
}

/// Append a [`Schema`] (table, arity, key columns, persistence).
pub fn put_schema(buf: &mut Vec<u8>, s: &Schema) {
    put_str(buf, &s.table);
    put_u32(buf, s.arity as u32);
    put_u32(buf, s.keys.len() as u32);
    for &k in &s.keys {
        put_u32(buf, k as u32);
    }
    buf.push(match s.persistence {
        Persistence::State => 0,
        Persistence::Event => 1,
    });
}

/// Cursor over an encoded record; every read is bounds-checked so corrupt
/// input yields an error, never a panic.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Start reading at the front of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn err(&self, what: &str) -> String {
        format!("{what} at byte {} of {}", self.pos, self.buf.len())
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, String> {
        let b = *self.buf.get(self.pos).ok_or_else(|| self.err("truncated u8"))?;
        self.pos += 1;
        Ok(b)
    }

    /// Read `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self.pos.checked_add(n).ok_or_else(|| self.err("length overflow"))?;
        let s = self.buf.get(self.pos..end).ok_or_else(|| self.err("truncated bytes"))?;
        self.pos = end;
        Ok(s)
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, String> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, String> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| self.err("invalid utf-8"))
    }

    /// Read a tagged [`Value`].
    pub fn value(&mut self) -> Result<Value, String> {
        match self.u8()? {
            0 => Ok(Value::Int(self.i64()?)),
            1 => Ok(Value::Str(self.str()?)),
            2 => Ok(Value::Bool(self.u8()? != 0)),
            3 => Ok(Value::Wild),
            t => Err(self.err(&format!("unknown value tag {t}"))),
        }
    }

    /// Read a [`Tuple`].
    pub fn tuple(&mut self) -> Result<Tuple, String> {
        let table = self.str()?;
        let loc = self.value()?;
        let n = self.u32()? as usize;
        if n > 1 << 20 {
            return Err(self.err(&format!("implausible arity {n}")));
        }
        let mut args = Vec::with_capacity(n);
        for _ in 0..n {
            args.push(self.value()?);
        }
        Ok(Tuple { table, loc, args })
    }

    /// Read a [`Schema`].
    pub fn schema(&mut self) -> Result<Schema, String> {
        let table = self.str()?;
        let arity = self.u32()? as usize;
        let nkeys = self.u32()? as usize;
        if nkeys > 1 << 20 {
            return Err(self.err(&format!("implausible key count {nkeys}")));
        }
        let mut keys = Vec::with_capacity(nkeys);
        for _ in 0..nkeys {
            keys.push(self.u32()? as usize);
        }
        let persistence = match self.u8()? {
            0 => Persistence::State,
            1 => Persistence::Event,
            t => return Err(self.err(&format!("unknown persistence tag {t}"))),
        };
        Ok(Schema { table, arity, keys, persistence })
    }

    /// Succeed only if the whole buffer was consumed.
    pub fn finish(self) -> Result<(), String> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(format!("{} trailing bytes after record", self.buf.len() - self.pos))
        }
    }
}
