//! Batch semi-naive join plans and the round-based drain loop.
//!
//! Compiled once per engine ([`build_plans`]): for every non-aggregate rule
//! and every body position the rule can be triggered at (the *delta*
//! position), a [`DeltaPlan`] lists the remaining atoms in join order
//! together with the keyed index ([`crate::index`]) each one probes and the
//! terms that produce the probe key from the environment bound so far.
//!
//! At runtime, `Engine::drain_batch` runs the classic semi-naive rounds:
//! the whole pending delta becomes the *recent* partition
//! ([`crate::delta`]), every delta tuple fires its triggers against index
//! probes, and tuples produced during the round form the next round's
//! delta. The positional discipline makes each new body combination fire
//! once per round: with the delta bound at body position `i`, an atom at
//! position `j > i` may only match tuples *outside the current round's
//! recent partition* (stable tuples, or a suspended outer round's recent
//! ones), while positions `j < i` may match anything already merged —
//! the mirror-image combination fires when the later tuple is the delta.
//! Tuples still pending (produced in the round being processed) are
//! invisible to every probe; they join as next-round deltas.

use crate::delta::{DeltaTracker, Visibility};
use crate::engine::{
    match_atom, resolve_term, CompiledRule, Engine, RuntimeError, StepResult,
};
use crate::index::{IndexRegistry, IndexSpec};
use crate::log::{TupleId, TupleKind};
use mpr_ndlog::ast::{CmpOp, Expr, Term};
use mpr_ndlog::eval::Env;
use mpr_ndlog::{Tuple, Value};
use std::collections::{BTreeSet, HashMap, VecDeque};

/// One join extension: probe `index_id` with the key built from
/// `key_terms`, then unify the candidates against body atom `atom_idx`.
#[derive(Debug, Clone)]
pub(crate) struct AtomPlan {
    /// Body position this extension fills.
    pub(crate) atom_idx: usize,
    /// Keyed index to probe (registered in the engine's registry).
    pub(crate) index_id: usize,
    /// Terms producing the probe key, one per index column; each is a
    /// constant or a variable bound before this extension runs.
    pub(crate) key_terms: Vec<Term>,
    /// Positional semi-naive discipline: this atom sits *after* the delta
    /// position, so it must not match the current round's recent tuples.
    pub(crate) exclude_recent: bool,
}

/// Join order for one (rule, delta position) pair.
#[derive(Debug, Clone, Default)]
pub(crate) struct DeltaPlan {
    /// Constant-equality selections over the delta atom's own columns,
    /// pushed down into the dispatch: `(column, constant)` pairs a delta
    /// tuple must satisfy or the rule cannot fire from this position.
    /// Column `0` is the location, `i + 1` payload argument `i`. Purely an
    /// early-out — the selection still evaluates normally afterwards.
    pub(crate) prefilter: Vec<(usize, Value)>,
    /// Extensions in execution order (body order, skipping the delta slot).
    pub(crate) atoms: Vec<AtomPlan>,
}

/// All delta plans of one rule, indexed by delta body position.
///
/// Aggregate rules keep an empty plan list — their single body atom feeds
/// the incremental aggregate groups instead of a join pipeline.
#[derive(Debug, Clone, Default)]
pub struct RulePlan {
    pub(crate) delta_plans: Vec<DeltaPlan>,
}

/// Constant-keyed trigger dispatch for one table (batch strategy only).
///
/// Rules whose delta plan pushes an `Eq`-with-constant selection onto the
/// same delta column are grouped by that constant: a delta tuple then
/// visits only the group matching its own value at the column, plus the
/// residual triggers, instead of scanning (and prefilter-rejecting) every
/// rule the table appears in. On programs where many rules select disjoint
/// constants from one event stream — the Fig. 10 padded policies are the
/// extreme case — this turns trigger dispatch from `O(rules)` into `O(1)`.
///
/// Only [`Value::Int`]/[`Value::Str`]/[`Value::Bool`] constants are keyed:
/// on those variants `HashMap` equality coincides with [`CmpOp::Eq`], while
/// a `Wild` constant never satisfies `Eq` and would be mis-matched by the
/// map. Triggers with no usable constant stay in `rest`. The in-plan
/// prefilter still runs for every dispatched trigger, so the grouping is
/// purely an early-out and never changes which rules fire.
#[derive(Debug, Default)]
pub(crate) struct TriggerDispatch {
    /// Delta column the keyed groups test (`0` = location, `i + 1` =
    /// payload argument `i`).
    pub(crate) col: usize,
    /// Triggers keyed by their prefilter constant on `col`, each group in
    /// original trigger order.
    pub(crate) keyed: HashMap<Value, Vec<(usize, usize)>>,
    /// Triggers without a keyable constant on `col`, in original order.
    pub(crate) rest: Vec<(usize, usize)>,
}

impl TriggerDispatch {
    /// The triggers `tuple` visits, in the exact order the plain trigger
    /// list would produce: the keyed group for the tuple's value at the
    /// dispatch column merged with the residual triggers by original
    /// `(rule, atom)` position. Both the sequential round loop and the
    /// parallel enumerator ([`crate::shard`]) iterate this, so their
    /// per-delta trigger sequence numbers always line up.
    pub(crate) fn triggers_for(&self, tuple: &Tuple) -> MergedTriggers<'_> {
        let keyed: &[(usize, usize)] = if self.keyed.is_empty() {
            &[]
        } else {
            let got = if self.col == 0 {
                Some(&tuple.loc)
            } else {
                tuple.args.get(self.col - 1)
            };
            got.and_then(|v| self.keyed.get(v)).map_or(&[], Vec::as_slice)
        };
        MergedTriggers { keyed, rest: &self.rest, i: 0, j: 0 }
    }
}

/// Allocation-free two-pointer merge of a keyed trigger group with the
/// residual triggers (both already sorted by `(rule, atom)`).
pub(crate) struct MergedTriggers<'a> {
    keyed: &'a [(usize, usize)],
    rest: &'a [(usize, usize)],
    i: usize,
    j: usize,
}

impl Iterator for MergedTriggers<'_> {
    type Item = (usize, usize);

    fn next(&mut self) -> Option<(usize, usize)> {
        let from_keyed = match (self.keyed.get(self.i), self.rest.get(self.j)) {
            (Some(a), Some(b)) => a < b,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => return None,
        };
        Some(if from_keyed {
            self.i += 1;
            self.keyed[self.i - 1]
        } else {
            self.j += 1;
            self.rest[self.j - 1]
        })
    }
}

/// Is `v` a variant on which `HashMap` equality matches [`CmpOp::Eq`]?
fn keyable(v: &Value) -> bool {
    matches!(v, Value::Int(_) | Value::Str(_) | Value::Bool(_))
}

/// Group each table's trigger list by the prefilter constant on the
/// column most of its triggers constrain (see [`TriggerDispatch`]).
pub(crate) fn build_dispatch(
    triggers: &HashMap<String, Vec<(usize, usize)>>,
    plans: &[RulePlan],
) -> HashMap<String, std::sync::Arc<TriggerDispatch>> {
    let prefilter = |ri: usize, ai: usize| -> &[(usize, Value)] {
        // Aggregate rules compile to an empty plan list; their triggers
        // always dispatch (they land in `rest`).
        plans[ri].delta_plans.get(ai).map_or(&[], |p| p.prefilter.as_slice())
    };
    triggers
        .iter()
        .map(|(table, list)| {
            let mut votes: HashMap<usize, usize> = HashMap::new();
            for &(ri, ai) in list {
                for &(col, ref val) in prefilter(ri, ai) {
                    if keyable(val) {
                        *votes.entry(col).or_default() += 1;
                    }
                }
            }
            // Most-constrained column wins; ties break to the lowest
            // column so the choice is deterministic.
            let col = votes
                .iter()
                .max_by_key(|&(&c, &n)| (n, std::cmp::Reverse(c)))
                .map(|(&c, _)| c);
            let mut dispatch = TriggerDispatch {
                col: col.unwrap_or(0),
                keyed: HashMap::new(),
                rest: Vec::new(),
            };
            for &(ri, ai) in list {
                let keyed_const = col.and_then(|col| {
                    prefilter(ri, ai)
                        .iter()
                        .find(|&&(c, ref v)| c == col && keyable(v))
                });
                match keyed_const {
                    Some(&(_, ref v)) => {
                        dispatch.keyed.entry(v.clone()).or_default().push((ri, ai));
                    }
                    None => dispatch.rest.push((ri, ai)),
                }
            }
            (table.clone(), std::sync::Arc::new(dispatch))
        })
        .collect()
}

/// Compile the delta plans for `rules`, registering every index shape the
/// plans probe in `registry`.
pub(crate) fn build_plans(rules: &[CompiledRule], registry: &mut IndexRegistry) -> Vec<RulePlan> {
    rules
        .iter()
        .map(|cr| {
            if cr.agg.is_some() {
                return RulePlan::default();
            }
            let body = &cr.rule.body;
            // `Var == Const` selections, for pushdown onto delta columns.
            let const_sels: Vec<(&String, &Value)> = cr
                .rule
                .sels
                .iter()
                .filter(|s| s.op == CmpOp::Eq)
                .filter_map(|s| match (&s.lhs, &s.rhs) {
                    (Expr::Var(v), Expr::Const(c)) | (Expr::Const(c), Expr::Var(v)) => {
                        Some((v, c))
                    }
                    _ => None,
                })
                .collect();
            let delta_plans = (0..body.len())
                .map(|d| {
                    let prefilter = const_sels
                        .iter()
                        .filter_map(|&(v, c)| {
                            let col = if body[d].loc == Term::Var(v.clone()) {
                                Some(0)
                            } else {
                                body[d]
                                    .args
                                    .iter()
                                    .position(|t| *t == Term::Var(v.clone()))
                                    .map(|i| i + 1)
                            };
                            col.map(|col| (col, c.clone()))
                        })
                        .collect();
                    let mut bound: BTreeSet<String> = body[d].vars();
                    let mut atoms = Vec::with_capacity(body.len().saturating_sub(1));
                    for (ai, atom) in body.iter().enumerate() {
                        if ai == d {
                            continue;
                        }
                        let positions = atom.bound_positions(&bound);
                        let cols = positions.iter().map(|&(c, _)| c).collect();
                        let key_terms =
                            positions.iter().map(|&(_, t)| t.clone()).collect();
                        let index_id = registry
                            .register(IndexSpec { table: atom.table.clone(), cols });
                        atoms.push(AtomPlan {
                            atom_idx: ai,
                            index_id,
                            key_terms,
                            exclude_recent: ai > d,
                        });
                        bound.extend(atom.vars());
                    }
                    DeltaPlan { prefilter, atoms }
                })
                .collect();
            RulePlan { delta_plans }
        })
        .collect()
}

impl Engine {
    /// Batch propagation: promote the whole pending delta to a round's
    /// recent partition, fire every trigger through index probes, repeat
    /// with whatever the round produced until nothing is pending.
    pub(crate) fn drain_batch(
        &mut self,
        queue: VecDeque<(TupleId, Tuple)>,
        result: &mut StepResult,
    ) -> Result<(), RuntimeError> {
        let mut pending = queue;
        // The processed batch and the next round's delta swap roles each
        // iteration, so the two buffers are allocated once per drain.
        let mut round_out: VecDeque<(TupleId, Tuple)> = VecDeque::new();
        // Fixpoint budgets: a round cap and an optional wall-clock
        // deadline, both surfaced as typed errors rather than spinning.
        // Checked at round boundaries only (outside any frame), so an
        // error here leaves the tracker balanced and the engine usable.
        let deadline = self
            .opts
            .time_budget
            .map(|b| (std::time::Instant::now() + b, b.as_millis() as u64));
        let mut rounds: u64 = 0;
        while !pending.is_empty() {
            rounds += 1;
            if rounds > self.opts.max_rounds {
                return Err(RuntimeError::RoundLimit(self.opts.max_rounds));
            }
            if let Some((d, budget_ms)) = deadline {
                // `>=` so a zero budget deterministically fails on the
                // first round regardless of clock granularity.
                if std::time::Instant::now() >= d {
                    return Err(RuntimeError::TimeBudget { budget_ms });
                }
            }
            // Events are transient — they fire triggers but are never
            // probed, so they stay out of the partitions.
            {
                let log = &self.log;
                self.deltas.begin_round(
                    pending
                        .iter()
                        .filter(|(tid, _)| {
                            log.tuples[*tid as usize].kind != TupleKind::Event
                        })
                        .map(|(tid, t)| (*tid, t.table.as_str())),
                );
            }
            // Under `Shards(n)`, large rounds precompute their join matches
            // across a worker pool; the apply loop below then consumes a
            // unit's matches only while the delta-tracker epoch proves the
            // round-start state they were enumerated against is still
            // current, recomputing sequentially otherwise (see
            // [`crate::shard`]). Small rounds, non-`par_safe` programs, and
            // plain `Batch` skip straight to the sequential loop.
            let mut enumerated = if self.strategy().workers() > 1
                && self.par_safe
                && pending.len() >= self.shard_min_round
            {
                Some(crate::shard::enumerate_round(self, &pending))
            } else {
                None
            };
            let mut outcome = Ok(());
            'round: for (idx, (tid, tuple)) in pending.iter().enumerate() {
                // A tuple may have died while queued (replacement/cascade).
                let rec = &self.log.tuples[*tid as usize];
                if rec.kind != TupleKind::Event && rec.disappear.is_some() {
                    continue;
                }
                let dispatch = match self.batch_dispatch.get(&tuple.table) {
                    Some(d) => std::sync::Arc::clone(d),
                    None => continue,
                };
                // The keyed group for this delta's value at the dispatch
                // column (if any), merged with the residual triggers in
                // original `(rule, atom)` order so firing order matches
                // the plain trigger list exactly.
                for (seq, (rule_idx, atom_idx)) in dispatch.triggers_for(tuple).enumerate() {
                    let fired = if self.rules[rule_idx].agg.is_some() {
                        self.agg_add(rule_idx, *tid, tuple, &mut round_out, result)
                    } else if let Some(matches) = enumerated
                        .as_mut()
                        .and_then(|en| en.take((idx, seq), self.deltas.epoch()))
                    {
                        self.apply_enumerated(
                            rule_idx, atom_idx, matches, tuple, &mut round_out, result,
                        )
                    } else {
                        self.fire_batch(rule_idx, atom_idx, *tid, tuple, &mut round_out, result)
                    };
                    if let Err(e) = fired {
                        outcome = Err(e);
                        break 'round;
                    }
                }
            }
            // Balance the frame stack even on error so the engine stays
            // usable for inspection after a derivation-limit abort.
            self.deltas.end_round();
            outcome?;
            // Round boundary: push this round's journaled store mutations
            // to the OS, bounding what a mid-fixpoint crash can lose to at
            // most one round of buffered ops.
            self.store.journal_flush();
            std::mem::swap(&mut pending, &mut round_out);
            round_out.clear();
        }
        Ok(())
    }

    /// Join `rule` with the delta bound at body position `atom_idx`,
    /// extending through keyed index probes.
    fn fire_batch(
        &mut self,
        rule_idx: usize,
        atom_idx: usize,
        delta_tid: TupleId,
        delta: &Tuple,
        queue: &mut VecDeque<(TupleId, Tuple)>,
        result: &mut StepResult,
    ) -> Result<(), RuntimeError> {
        // The plans live behind an `Arc` so the firing can keep its plan
        // across the `&mut self` join calls (and any nested fixpoint those
        // trigger) without cloning the plan per delta tuple.
        let plans = std::sync::Arc::clone(&self.plans);
        let plan = &plans[rule_idx].delta_plans[atom_idx];
        // Pushed-down constant selections: reject the delta before paying
        // for unification. `CmpOp::Eq` (not `PartialEq`) keeps wildcard
        // semantics identical to the ordinary selection pass below.
        for &(col, ref want) in &plan.prefilter {
            let got = if col == 0 { Some(&delta.loc) } else { delta.args.get(col - 1) };
            match got {
                Some(v) if CmpOp::Eq.eval(v, want) => {}
                _ => return Ok(()),
            }
        }
        let cr = &self.rules[rule_idx];
        let Some(env0) = match_atom(&cr.rule.body[atom_idx], delta, &Env::new()) else {
            return Ok(());
        };
        let n_sels = cr.rule.sels.len();
        let mut sel_done = vec![false; n_sels];
        if !self.eval_ready_sels(rule_idx, &env0, &mut sel_done) {
            return Ok(());
        }
        let mut matches: Vec<(Env, Vec<TupleId>, Vec<bool>)> =
            vec![(env0, vec![delta_tid], sel_done)];
        for ap in &plan.atoms {
            let mut next: Vec<(Env, Vec<TupleId>, Vec<bool>)> = Vec::new();
            for (env, tids, sels) in &matches {
                let mut key = Vec::with_capacity(ap.key_terms.len());
                for t in &ap.key_terms {
                    match resolve_term(t, env) {
                        Some(v) => key.push(v),
                        // Unreachable by construction (every key term is a
                        // constant or a bound variable); stay total.
                        None => return Ok(()),
                    }
                }
                // Ids only: the probe borrows the index and the visibility
                // test the tracker, while unification below needs the
                // engine mutably.
                let candidates: Vec<TupleId> = self
                    .indexes
                    .probe(ap.index_id, &key)
                    .filter(|&tid| joinable(&self.deltas, tid, ap.exclude_recent))
                    .collect();
                for ctid in candidates {
                    let env2 = {
                        let ctuple = &self.log.tuples[ctid as usize].tuple;
                        let atom = &self.rules[rule_idx].rule.body[ap.atom_idx];
                        match_atom(atom, ctuple, env)
                    };
                    let Some(env2) = env2 else { continue };
                    let mut sels2 = sels.clone();
                    if !self.eval_ready_sels(rule_idx, &env2, &mut sels2) {
                        continue;
                    }
                    let mut tids2 = tids.clone();
                    tids2.push(ctid);
                    next.push((env2, tids2, sels2));
                }
            }
            matches = next;
            if matches.is_empty() {
                return Ok(());
            }
        }
        // Reorder body tids into body-atom order for the provenance log.
        for (env, tids, sels) in matches {
            let mut body_tids = vec![0; tids.len()];
            body_tids[atom_idx] = tids[0];
            for (slot, ap) in plan.atoms.iter().enumerate() {
                body_tids[ap.atom_idx] = tids[slot + 1];
            }
            self.finish_firing(rule_idx, env, sels, body_tids, delta, queue, result)?;
        }
        Ok(())
    }
}

/// The semi-naive visibility predicate: a candidate joins when it is
/// already merged (stable), or recent but — for positions after the delta
/// slot — not in the innermost round. Pending tuples (in no partition)
/// never join; they are next-round deltas.
pub(crate) fn joinable(deltas: &DeltaTracker, tid: TupleId, exclude_recent: bool) -> bool {
    match deltas.visibility(tid) {
        Visibility::Stable | Visibility::RecentOuter => true,
        Visibility::RecentInnermost => !exclude_recent,
        Visibility::Absent => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EvalStrategy, Options};
    use mpr_ndlog::{parse_program, Value};

    fn batch_engine(src: &str) -> Engine {
        let p = parse_program("t", src).unwrap();
        Engine::with_options(
            &p,
            Options { strategy: EvalStrategy::Batch, ..Options::default() },
        )
        .unwrap()
    }

    #[test]
    fn plans_register_one_index_per_extension_shape() {
        let src = r"
            materialize(Link, infinity, 2, keys(0,1)).
            materialize(Reach, infinity, 2, keys(0,1)).
            r1 Reach(@C,X,Y) :- Link(@C,X,Y), X != Y.
            r2 Reach(@C,X,Z) :- Reach(@C,X,Y), Link(@C,Y,Z), X != Z.
        ";
        let e = batch_engine(src);
        // r1 has a single-atom body (no extensions); r2 contributes two
        // delta positions: Reach-delta probes Link on (loc, arg0) and
        // Link-delta probes Reach on (loc, arg1).
        assert_eq!(e.strategy(), EvalStrategy::Batch);
        assert!(e.index_entries() == 0, "no tuples inserted yet");
    }

    #[test]
    fn indexes_track_live_tuples_through_cascades() {
        let src = r"
            materialize(A, infinity, 1, keys(0)).
            materialize(B, infinity, 1, keys(0)).
            materialize(Out, infinity, 2, keys(0,1)).
            r1 Out(@N,X,Y) :- A(@N,X), B(@N,Y).
        ";
        let mut e = batch_engine(src);
        let v = |i: i64| Value::Int(i);
        e.insert(Tuple::new("A", v(1), vec![v(10)])).unwrap();
        e.insert(Tuple::new("B", v(1), vec![v(20)])).unwrap();
        assert!(e.contains(&Tuple::new("Out", v(1), vec![v(10), v(20)])));
        let populated = e.index_entries();
        assert!(populated > 0, "live tuples must be indexed");
        e.delete(&Tuple::new("A", v(1), vec![v(10)])).unwrap();
        assert!(!e.contains(&Tuple::new("Out", v(1), vec![v(10), v(20)])));
        assert!(
            e.index_entries() < populated,
            "killed tuples must leave the indexes"
        );
    }

    #[test]
    fn dispatch_groups_triggers_by_pushed_down_constant() {
        let src = r"
            materialize(PacketIn, event, 2, keys()).
            materialize(FlowTable, infinity, 2, keys(0)).
            r1 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), Swi == 1, Hdr == 80, Prt := 1.
            r2 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), Swi == 2, Hdr == 80, Prt := 1.
            r3 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), Hdr == 25, Prt := 9.
        ";
        let e = batch_engine(src);
        let d = e.batch_dispatch.get("PacketIn").expect("PacketIn dispatches");
        // All three rules constrain Hdr (arg 1 → column 2); only r1/r2
        // constrain Swi — so Hdr wins the vote and every trigger is keyed.
        assert_eq!(d.col, 2);
        assert!(d.rest.is_empty());
        assert_eq!(d.keyed.get(&Value::Int(80)).map(Vec::len), Some(2));
        assert_eq!(d.keyed.get(&Value::Int(25)).map(Vec::len), Some(1));
        // A delta carrying Hdr = 80 visits two triggers; Hdr = 99 none.
        let mut e = e;
        let v = |i: i64| Value::Int(i);
        e.insert(Tuple::new("PacketIn", v(9), vec![v(1), v(80)])).unwrap();
        assert_eq!(e.tuples("FlowTable").len(), 1);
        e.insert(Tuple::new("PacketIn", v(9), vec![v(7), v(99)])).unwrap();
        assert_eq!(e.tuples("FlowTable").len(), 1, "no rule matches Hdr 99");
        e.insert(Tuple::new("PacketIn", v(9), vec![v(7), v(25)])).unwrap();
        assert_eq!(e.tuples("FlowTable").len(), 2, "r3 has no Swi constraint");
    }

    #[test]
    fn rounds_settle_into_stable_partitions() {
        let src = r"
            materialize(Link, infinity, 2, keys(0,1)).
            materialize(Reach, infinity, 2, keys(0,1)).
            r1 Reach(@C,X,Y) :- Link(@C,X,Y), X != Y.
            r2 Reach(@C,X,Z) :- Reach(@C,X,Y), Link(@C,Y,Z), X != Z.
        ";
        let mut e = batch_engine(src);
        let c = Value::str("C");
        let v = |i: i64| Value::Int(i);
        for (a, b) in [(1, 2), (2, 3), (3, 4)] {
            e.insert(Tuple::new("Link", c.clone(), vec![v(a), v(b)])).unwrap();
        }
        assert_eq!(e.tuples("Reach").len(), 6);
        let stats = e.delta_stats();
        assert!(stats.iter().all(|s| s.recent == 0), "no round is active");
        let reach = stats.iter().find(|s| s.table == "Reach").unwrap();
        assert_eq!(reach.stable, 6);
    }
}
