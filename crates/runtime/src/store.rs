//! The tuple store: per-table, per-node materialized state with
//! primary-key replacement and support counting.

use crate::journal::{
    decode_op, decode_snapshot, encode_snapshot, Journal, StoreOp, StoreRecovery,
};
use crate::log::{TupleId, TupleKind};
use mpr_ndlog::{Schema, Tuple, Value};
use mpr_storage::{StorageBackend, StorageError};
use std::collections::HashMap;

/// A live tuple instance held by the store.
#[derive(Debug, Clone)]
pub struct LiveTuple {
    /// Instance id (stable across the tuple's lifetime).
    pub tid: TupleId,
    /// The tuple.
    pub tuple: Tuple,
    /// Number of base insertions currently supporting it.
    pub base_count: u32,
    /// Number of active derivations currently supporting it.
    pub deriv_count: u32,
}

impl LiveTuple {
    /// Total support.
    pub fn support(&self) -> u32 {
        self.base_count + self.deriv_count
    }

    /// The kind implied by its support mix (base wins for provenance).
    pub fn kind(&self) -> TupleKind {
        if self.base_count > 0 {
            TupleKind::Base
        } else {
            TupleKind::Derived
        }
    }
}

/// Result of adding support to the store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AddOutcome {
    /// The tuple is new; it must be announced (APPEAR) and propagated.
    New(TupleId),
    /// An identical tuple already existed; support was incremented.
    SupportOnly(TupleId),
    /// A tuple with the same primary key but different payload existed and
    /// was evicted: the old instance must disappear before the new appears.
    Replaced {
        /// Evicted instance.
        old: TupleId,
        /// Newly inserted instance.
        new: TupleId,
    },
}

/// Result of dropping support.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DropOutcome {
    /// Support remains; nothing visible happened.
    StillAlive,
    /// Support hit zero; the instance disappeared.
    Gone(TupleId),
    /// The tuple was not present at all.
    Absent,
}

#[derive(Debug, Default)]
struct TableStore {
    /// node → key columns → live tuple. Nesting by node keeps the common
    /// location-bound scan of the pipelined join O(node bucket) instead of
    /// O(table); empty node buckets are removed eagerly.
    by_node: HashMap<Value, HashMap<Vec<Value>, LiveTuple>>,
}

impl TableStore {
    fn len(&self) -> usize {
        self.by_node.values().map(HashMap::len).sum()
    }

    fn is_empty(&self) -> bool {
        self.by_node.values().all(HashMap::is_empty)
    }
}

/// The multi-node tuple store.
#[derive(Debug, Default)]
pub struct Store {
    tables: HashMap<String, TableStore>,
    schemas: HashMap<String, Schema>,
    /// Durability journal, when one is attached ([`Store::attach_journal`]).
    /// `None` — the default — is exactly the pre-durability store: zero
    /// cost, zero behavior change.
    journal: Option<Journal>,
}

// Shard workers hold `&Engine` (hence `&Store`) across threads; the journal
// only breaks that if a backend smuggles in non-Sync state, so pin it here.
const _: fn() = || {
    fn assert_sync<T: Sync + Send>() {}
    assert_sync::<Store>();
};

impl Store {
    /// Empty store with a schema per table (tables not declared get
    /// set-semantics state schemas on first touch).
    pub fn new() -> Self {
        Store::default()
    }

    /// Register the schema used for keying `table`.
    pub fn declare(&mut self, schema: Schema) {
        self.schemas.insert(schema.table.clone(), schema.clone());
        if self.journal.is_some() {
            self.journal_op(&StoreOp::Declare(schema));
        }
    }

    /// The schema for `table` (falling back to all-column keys).
    pub fn schema_for(&self, table: &str, arity: usize) -> Schema {
        self.schemas
            .get(table)
            .cloned()
            .unwrap_or_else(|| Schema::state(table, arity))
    }

    fn key_of(&self, tuple: &Tuple) -> Vec<Value> {
        let schema = self.schema_for(&tuple.table, tuple.args.len());
        tuple.key(&schema.effective_keys())
    }

    /// Add one unit of support for `tuple`. `base` distinguishes base
    /// insertions from derivations. `next_tid` mints the instance id if the
    /// tuple is new.
    pub fn add(
        &mut self,
        tuple: &Tuple,
        base: bool,
        next_tid: &mut dyn FnMut() -> TupleId,
    ) -> AddOutcome {
        let out = self.add_inner(tuple, base, next_tid);
        // Journal *after* mutating: a compaction triggered by this op must
        // snapshot the post-op state, or the op's effect would be lost.
        if self.journal.is_some() {
            self.journal_op(&StoreOp::Add { tuple: tuple.clone(), base });
        }
        out
    }

    fn add_inner(
        &mut self,
        tuple: &Tuple,
        base: bool,
        next_tid: &mut dyn FnMut() -> TupleId,
    ) -> AddOutcome {
        let key = self.key_of(tuple);
        let ts = self.tables.entry(tuple.table.clone()).or_default();
        let bucket = ts.by_node.entry(tuple.loc.clone()).or_default();
        if let Some(live) = bucket.get_mut(&key) {
            if &live.tuple == tuple {
                if base {
                    live.base_count += 1;
                } else {
                    live.deriv_count += 1;
                }
                return AddOutcome::SupportOnly(live.tid);
            }
            // Primary-key conflict with different payload: replace.
            let old = live.tid;
            let tid = next_tid();
            *live = LiveTuple {
                tid,
                tuple: tuple.clone(),
                base_count: u32::from(base),
                deriv_count: u32::from(!base),
            };
            return AddOutcome::Replaced { old, new: tid };
        }
        let tid = next_tid();
        bucket.insert(
            key,
            LiveTuple {
                tid,
                tuple: tuple.clone(),
                base_count: u32::from(base),
                deriv_count: u32::from(!base),
            },
        );
        AddOutcome::New(tid)
    }

    /// Drop one unit of support for `tuple`.
    pub fn drop_support(&mut self, tuple: &Tuple, base: bool) -> DropOutcome {
        let out = self.drop_inner(tuple, base);
        if self.journal.is_some() && out != DropOutcome::Absent {
            self.journal_op(&StoreOp::Drop { tuple: tuple.clone(), base });
        }
        out
    }

    fn drop_inner(&mut self, tuple: &Tuple, base: bool) -> DropOutcome {
        let key = self.key_of(tuple);
        let Some(ts) = self.tables.get_mut(&tuple.table) else {
            return DropOutcome::Absent;
        };
        let Some(bucket) = ts.by_node.get_mut(&tuple.loc) else {
            return DropOutcome::Absent;
        };
        let Some(live) = bucket.get_mut(&key) else {
            return DropOutcome::Absent;
        };
        if &live.tuple != tuple {
            return DropOutcome::Absent;
        }
        if base {
            if live.base_count == 0 {
                return DropOutcome::Absent;
            }
            live.base_count -= 1;
        } else {
            if live.deriv_count == 0 {
                return DropOutcome::Absent;
            }
            live.deriv_count -= 1;
        }
        if live.support() == 0 {
            let tid = live.tid;
            bucket.remove(&key);
            if bucket.is_empty() {
                ts.by_node.remove(&tuple.loc);
            }
            DropOutcome::Gone(tid)
        } else {
            DropOutcome::StillAlive
        }
    }

    /// Forcibly remove an instance by exact tuple (used for replacement
    /// cascades). Returns its id if present.
    pub fn evict(&mut self, tuple: &Tuple) -> Option<TupleId> {
        let out = self.evict_inner(tuple);
        if self.journal.is_some() && out.is_some() {
            self.journal_op(&StoreOp::Evict { tuple: tuple.clone() });
        }
        out
    }

    fn evict_inner(&mut self, tuple: &Tuple) -> Option<TupleId> {
        let key = self.key_of(tuple);
        let ts = self.tables.get_mut(&tuple.table)?;
        let bucket = ts.by_node.get_mut(&tuple.loc)?;
        match bucket.get(&key) {
            Some(live) if &live.tuple == tuple => {
                let tid = live.tid;
                bucket.remove(&key);
                if bucket.is_empty() {
                    ts.by_node.remove(&tuple.loc);
                }
                Some(tid)
            }
            _ => None,
        }
    }

    /// Look up the live instance of an exact tuple.
    pub fn get(&self, tuple: &Tuple) -> Option<&LiveTuple> {
        let key = self.key_of(tuple);
        self.tables
            .get(&tuple.table)?
            .by_node
            .get(&tuple.loc)?
            .get(&key)
            .filter(|l| &l.tuple == tuple)
    }

    /// `true` when the exact tuple is live.
    pub fn contains(&self, tuple: &Tuple) -> bool {
        self.get(tuple).is_some()
    }

    /// Iterate live tuples of `table`, optionally restricted to one node.
    ///
    /// The iteration walks hash maps, so the order varies between runs and
    /// even between identical stores. Callers whose results depend on visit
    /// order — anything feeding the fixpoint or the provenance log — must
    /// use [`Store::scan_ordered`] instead.
    pub fn scan<'a>(
        &'a self,
        table: &str,
        node: Option<&'a Value>,
    ) -> Box<dyn Iterator<Item = &'a LiveTuple> + 'a> {
        match self.tables.get(table) {
            None => Box::new(std::iter::empty()),
            Some(ts) => match node {
                None => Box::new(ts.by_node.values().flat_map(HashMap::values)),
                Some(n) => match ts.by_node.get(n) {
                    None => Box::new(std::iter::empty()),
                    Some(bucket) => Box::new(bucket.values()),
                },
            },
        }
    }

    /// Like [`Store::scan`], but in ascending instance-id order — a total,
    /// run-to-run stable order (ids are minted sequentially), matching the
    /// `BTreeSet` bucket order of the batch engine's keyed indexes. Join
    /// loops visit candidates through this so that order-sensitive effects
    /// (primary-key replacement is last-write-wins) are deterministic.
    pub fn scan_ordered<'a>(&'a self, table: &str, node: Option<&'a Value>) -> Vec<&'a LiveTuple> {
        let mut v: Vec<&'a LiveTuple> = self.scan(table, node).collect();
        v.sort_unstable_by_key(|l| l.tid);
        v
    }

    /// All live tuples of `table`, sorted for deterministic output.
    pub fn tuples(&self, table: &str) -> Vec<Tuple> {
        let mut v: Vec<Tuple> = self.scan(table, None).map(|l| l.tuple.clone()).collect();
        v.sort();
        v
    }

    /// Total number of live tuples across all tables.
    pub fn len(&self) -> usize {
        self.tables.values().map(TableStore::len).sum()
    }

    /// `true` when the store holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Names of tables that currently hold tuples.
    pub fn table_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self
            .tables
            .iter()
            .filter(|(_, t)| !t.is_empty())
            .map(|(n, _)| n.clone())
            .collect();
        v.sort();
        v
    }

    // ------------------------------------------------------------------
    // durability

    /// Attach a durability journal. From this point every effectful
    /// mutation is appended as a [`StoreOp`] record; a snapshot compacts
    /// the log every `compact_every` ops (0 = never).
    ///
    /// Existing state is made durable up front: an empty store journals
    /// its schema declarations (cheap), a populated one installs a full
    /// snapshot — so the backend always describes the complete store, and
    /// reattaching after [`Store::recover`] doubles as log compaction.
    pub fn attach_journal(&mut self, backend: Box<dyn StorageBackend>, compact_every: usize) {
        let mut journal = Journal::new(backend, compact_every);
        if self.is_empty() {
            for schema in self.sorted_schemas() {
                journal.append_op(&StoreOp::Declare(schema));
            }
        } else {
            let snap = encode_snapshot(&self.sorted_schemas(), &self.dump());
            journal.install_snapshot(&snap);
        }
        self.journal = Some(journal);
    }

    /// Why durability shut itself off (first backend failure), if it did.
    /// `None` means healthy — or that no journal was ever attached.
    pub fn durability_degraded(&self) -> Option<&str> {
        self.journal.as_ref().and_then(Journal::degraded)
    }

    /// `(records in current WAL segment, WAL bytes)`, when journaling.
    pub fn journal_stats(&self) -> Option<(usize, u64)> {
        self.journal.as_ref().map(Journal::stats)
    }

    /// The attached backend's stable name (`"mem"`, `"wal"`), if any.
    pub fn backend_name(&self) -> Option<&'static str> {
        self.journal.as_ref().map(Journal::backend_name)
    }

    /// Flush journaled writes (called at step and round boundaries).
    pub fn journal_flush(&mut self) {
        if let Some(j) = &mut self.journal {
            j.flush();
        }
    }

    fn journal_op(&mut self, op: &StoreOp) {
        if let Some(j) = &mut self.journal {
            j.append_op(op);
        }
        if self.journal.as_ref().is_some_and(Journal::compaction_due) {
            let snap = encode_snapshot(&self.sorted_schemas(), &self.dump());
            if let Some(j) = &mut self.journal {
                j.install_snapshot(&snap);
            }
        }
    }

    fn sorted_schemas(&self) -> Vec<Schema> {
        let mut v: Vec<Schema> = self.schemas.values().cloned().collect();
        v.sort_by(|a, b| a.table.cmp(&b.table));
        v
    }

    /// Full deterministic dump: every live tuple with its
    /// `(base_count, deriv_count)`, sorted by tuple. This is the state the
    /// recovery harness compares for prefix consistency.
    pub fn dump(&self) -> Vec<(Tuple, u32, u32)> {
        let mut v: Vec<(Tuple, u32, u32)> = self
            .tables
            .values()
            .flat_map(|ts| ts.by_node.values())
            .flat_map(HashMap::values)
            .map(|l| (l.tuple.clone(), l.base_count, l.deriv_count))
            .collect();
        v.sort();
        v
    }

    /// Live tuples with base support, sorted — the durable facts a
    /// restarted engine re-seeds from (derived state is recomputed).
    pub fn base_tuples(&self) -> Vec<Tuple> {
        let mut v: Vec<Tuple> = self
            .tables
            .values()
            .flat_map(|ts| ts.by_node.values())
            .flat_map(HashMap::values)
            .filter(|l| l.base_count > 0)
            .map(|l| l.tuple.clone())
            .collect();
        v.sort();
        v
    }

    /// Replay one journaled op (no re-journaling happens unless a journal
    /// is attached to `self`, which recovery does not do).
    pub fn apply_op(&mut self, op: &StoreOp, next_tid: &mut dyn FnMut() -> TupleId) {
        match op {
            StoreOp::Declare(s) => self.declare(s.clone()),
            StoreOp::Add { tuple, base } => {
                self.add(tuple, *base, next_tid);
            }
            StoreOp::Drop { tuple, base } => {
                self.drop_support(tuple, *base);
            }
            StoreOp::Evict { tuple } => {
                self.evict(tuple);
            }
        }
    }

    /// Restore a snapshot entry verbatim (counts are state, not requests).
    fn restore_entry(&mut self, tuple: Tuple, base: u32, deriv: u32, tid: TupleId) {
        let key = self.key_of(&tuple);
        let ts = self.tables.entry(tuple.table.clone()).or_default();
        ts.by_node
            .entry(tuple.loc.clone())
            .or_default()
            .insert(key, LiveTuple { tid, tuple, base_count: base, deriv_count: deriv });
    }

    /// Rebuild a store from a backend's durable state: restore the newest
    /// snapshot, then replay the WAL ops in order. Damage the backend
    /// already survived (torn tail, corrupt records) arrives as the typed
    /// status inside [`StoreRecovery`]; records that fail to *decode*
    /// (format drift past the checksum) stop the replay at the last good
    /// prefix and are counted, never panicked on.
    pub fn recover(
        backend: &mut dyn StorageBackend,
    ) -> Result<(Store, StoreRecovery), StorageError> {
        let recovered = backend.recover()?;
        let mut store = Store::new();
        let mut report = StoreRecovery {
            status: recovered.status,
            snapshot_restored: false,
            ops_applied: 0,
            ops_skipped: 0,
        };
        let mut next: TupleId = 0;
        if let Some(snap) = &recovered.snapshot {
            let (schemas, entries) = decode_snapshot(snap)
                .map_err(|reason| StorageError::Corrupt { offset: 0, reason })?;
            for s in schemas {
                store.declare(s);
            }
            for (tuple, base, deriv) in entries {
                let tid = next;
                next += 1;
                store.restore_entry(tuple, base, deriv, tid);
            }
            report.snapshot_restored = true;
        }
        for rec in &recovered.records {
            match decode_op(rec) {
                Ok(op) => {
                    store.apply_op(&op, &mut || {
                        let t = next;
                        next += 1;
                        t
                    });
                    report.ops_applied += 1;
                }
                Err(_) => break,
            }
        }
        report.ops_skipped = recovered.records.len() - report.ops_applied;
        Ok((store, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(args: &[i64]) -> Tuple {
        Tuple::new("T", 1i64, args.iter().map(|&v| Value::Int(v)).collect())
    }

    fn mk_store_keyed() -> Store {
        let mut s = Store::new();
        s.declare(Schema::state_keyed("T", 2, vec![0]));
        s
    }

    #[test]
    fn add_and_support_counting() {
        let mut s = Store::new();
        let mut next = 0;
        let mut tid = || {
            let v = next;
            next += 1;
            v
        };
        assert_eq!(s.add(&t(&[1, 2]), true, &mut tid), AddOutcome::New(0));
        assert_eq!(s.add(&t(&[1, 2]), false, &mut tid), AddOutcome::SupportOnly(0));
        assert!(s.contains(&t(&[1, 2])));
        assert_eq!(s.get(&t(&[1, 2])).unwrap().support(), 2);
        assert_eq!(s.drop_support(&t(&[1, 2]), true), DropOutcome::StillAlive);
        assert_eq!(s.drop_support(&t(&[1, 2]), false), DropOutcome::Gone(0));
        assert!(!s.contains(&t(&[1, 2])));
        assert_eq!(s.drop_support(&t(&[1, 2]), false), DropOutcome::Absent);
    }

    #[test]
    fn primary_key_replacement() {
        let mut s = mk_store_keyed();
        let mut next = 0;
        let mut tid = || {
            let v = next;
            next += 1;
            v
        };
        assert_eq!(s.add(&t(&[1, 2]), true, &mut tid), AddOutcome::New(0));
        // Same key (first col), different payload → replacement.
        assert_eq!(
            s.add(&t(&[1, 9]), true, &mut tid),
            AddOutcome::Replaced { old: 0, new: 1 }
        );
        assert!(!s.contains(&t(&[1, 2])));
        assert!(s.contains(&t(&[1, 9])));
        // Different key → coexists.
        assert_eq!(s.add(&t(&[2, 2]), true, &mut tid), AddOutcome::New(2));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn per_node_scan() {
        let mut s = Store::new();
        let mut next = 0;
        let mut tid = || {
            let v = next;
            next += 1;
            v
        };
        let t1 = Tuple::new("T", 1i64, vec![Value::Int(1)]);
        let t2 = Tuple::new("T", 2i64, vec![Value::Int(1)]);
        s.add(&t1, true, &mut tid);
        s.add(&t2, true, &mut tid);
        assert_eq!(s.scan("T", None).count(), 2);
        assert_eq!(s.scan("T", Some(&Value::Int(1))).count(), 1);
        assert_eq!(s.scan("T", Some(&Value::Int(9))).count(), 0);
        assert_eq!(s.scan("Missing", None).count(), 0);
        assert_eq!(s.table_names(), vec!["T".to_string()]);
    }

    #[test]
    fn evict_removes_exact_instance() {
        let mut s = mk_store_keyed();
        let mut next = 0;
        let mut tid = || {
            let v = next;
            next += 1;
            v
        };
        s.add(&t(&[1, 2]), true, &mut tid);
        assert_eq!(s.evict(&t(&[1, 3])), None); // payload mismatch
        assert_eq!(s.evict(&t(&[1, 2])), Some(0));
        assert!(s.is_empty());
    }
}
