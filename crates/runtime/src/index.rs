//! Keyed hash indexes on join columns.
//!
//! The batch engine ([`crate::engine::EvalStrategy::Batch`]) probes these
//! instead of scanning a whole table per join extension: every `(table, bound columns)` shape a
//! compiled rule can ask for is registered up front, and the engine keeps
//! every registered index in sync with the store as tuples appear and
//! disappear. A probe returns the tuple instances whose key columns equal
//! the bound values — O(matches) instead of O(table).
//!
//! Column numbering is uniform across the crate: column `0` is the `@`
//! location, column `i + 1` is payload argument `i`.
//!
//! Two properties here are load-bearing for the sharded strategy
//! ([`crate::shard`]): [`IndexRegistry::probe`] takes `&self`, so a frozen
//! registry can be probed from many worker threads at once, and buckets
//! are `BTreeSet`s, so every probe — from any thread — yields candidates
//! in the same ascending-id order the sequential loop sees.

use crate::log::TupleId;
use mpr_ndlog::{Tuple, Value};
use std::collections::{BTreeSet, HashMap};

/// The parallel round enumerator shares `&IndexRegistry` across scoped
/// threads; keep the registry free of interior mutability.
const _: fn() = || {
    fn requires_send_sync<T: Send + Sync>() {}
    requires_send_sync::<IndexRegistry>();
};

/// A column selector: `0` is the location, `i + 1` is payload argument `i`.
pub type Col = usize;

/// The shape of one index: a table plus the ordered key columns.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IndexSpec {
    /// Indexed table.
    pub table: String,
    /// Key columns, in probe order.
    pub cols: Vec<Col>,
}

impl IndexSpec {
    /// Extract this index's key from a tuple. `None` when the tuple is too
    /// short for one of the key columns (such a tuple can never match the
    /// atom the index serves, so it is simply not indexed here).
    pub fn key_of(&self, tuple: &Tuple) -> Option<Vec<Value>> {
        self.cols
            .iter()
            .map(|&c| {
                if c == 0 {
                    Some(tuple.loc.clone())
                } else {
                    tuple.args.get(c - 1).cloned()
                }
            })
            .collect()
    }
}

#[derive(Debug)]
struct KeyedIndex {
    spec: IndexSpec,
    /// Key values → live tuple instances, ordered by id so probe order is
    /// deterministic (insertion order).
    buckets: HashMap<Vec<Value>, BTreeSet<TupleId>>,
}

/// All keyed indexes of one engine, updated together.
#[derive(Debug, Default)]
pub struct IndexRegistry {
    indexes: Vec<KeyedIndex>,
    ids: HashMap<IndexSpec, usize>,
    /// table → indexes over it (for update fan-out).
    by_table: HashMap<String, Vec<usize>>,
}

impl IndexRegistry {
    /// Register an index shape, returning its id. Idempotent: the same
    /// spec always maps to the same id.
    pub fn register(&mut self, spec: IndexSpec) -> usize {
        if let Some(&id) = self.ids.get(&spec) {
            return id;
        }
        let id = self.indexes.len();
        self.ids.insert(spec.clone(), id);
        self.by_table.entry(spec.table.clone()).or_default().push(id);
        self.indexes.push(KeyedIndex { spec, buckets: HashMap::new() });
        id
    }

    /// Number of registered indexes.
    pub fn len(&self) -> usize {
        self.indexes.len()
    }

    /// `true` when no index is registered.
    pub fn is_empty(&self) -> bool {
        self.indexes.is_empty()
    }

    /// Add a live tuple instance to every index over its table.
    pub fn insert(&mut self, tid: TupleId, tuple: &Tuple) {
        let Some(ids) = self.by_table.get(&tuple.table) else {
            return;
        };
        for &id in ids {
            let idx = &mut self.indexes[id];
            if let Some(key) = idx.spec.key_of(tuple) {
                idx.buckets.entry(key).or_default().insert(tid);
            }
        }
    }

    /// Remove a tuple instance from every index over its table.
    pub fn remove(&mut self, tid: TupleId, tuple: &Tuple) {
        let Some(ids) = self.by_table.get(&tuple.table) else {
            return;
        };
        for &id in ids {
            let idx = &mut self.indexes[id];
            if let Some(key) = idx.spec.key_of(tuple) {
                if let Some(bucket) = idx.buckets.get_mut(&key) {
                    bucket.remove(&tid);
                    if bucket.is_empty() {
                        idx.buckets.remove(&key);
                    }
                }
            }
        }
    }

    /// The live instances matching `key` under index `id`, in id order.
    pub fn probe(&self, id: usize, key: &[Value]) -> impl Iterator<Item = TupleId> + '_ {
        self.indexes[id]
            .buckets
            .get(key)
            .into_iter()
            .flat_map(|b| b.iter().copied())
    }

    /// Total number of (index, tuple) entries — a size diagnostic.
    pub fn entry_count(&self) -> usize {
        self.indexes
            .iter()
            .map(|i| i.buckets.values().map(BTreeSet::len).sum::<usize>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(loc: i64, args: &[i64]) -> Tuple {
        Tuple::new("T", loc, args.iter().map(|&v| Value::Int(v)).collect())
    }

    #[test]
    fn register_is_idempotent() {
        let mut r = IndexRegistry::default();
        let a = r.register(IndexSpec { table: "T".into(), cols: vec![0, 2] });
        let b = r.register(IndexSpec { table: "T".into(), cols: vec![0, 2] });
        let c = r.register(IndexSpec { table: "T".into(), cols: vec![1] });
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn probe_returns_matching_instances_in_id_order() {
        let mut r = IndexRegistry::default();
        let id = r.register(IndexSpec { table: "T".into(), cols: vec![0, 1] });
        r.insert(7, &t(1, &[5, 8]));
        r.insert(3, &t(1, &[5, 9]));
        r.insert(4, &t(2, &[5, 9]));
        let key = vec![Value::Int(1), Value::Int(5)];
        let hits: Vec<TupleId> = r.probe(id, &key).collect();
        assert_eq!(hits, vec![3, 7]);
        r.remove(7, &t(1, &[5, 8]));
        let hits: Vec<TupleId> = r.probe(id, &key).collect();
        assert_eq!(hits, vec![3]);
    }

    #[test]
    fn short_tuples_are_skipped_not_panicking() {
        let mut r = IndexRegistry::default();
        let id = r.register(IndexSpec { table: "T".into(), cols: vec![3] });
        r.insert(0, &t(1, &[5])); // arity 1 < col 3: unindexable
        assert_eq!(r.entry_count(), 0);
        assert_eq!(r.probe(id, &[Value::Int(5)]).count(), 0);
        r.remove(0, &t(1, &[5])); // must not panic either
    }

    #[test]
    fn empty_cols_index_is_a_table_scan() {
        let mut r = IndexRegistry::default();
        let id = r.register(IndexSpec { table: "T".into(), cols: vec![] });
        r.insert(0, &t(1, &[1]));
        r.insert(1, &t(2, &[2]));
        assert_eq!(r.probe(id, &[]).count(), 2);
    }
}
