//! The execution log — the engine's record of *everything that happened*.
//!
//! The paper's runtime "records relevant control-plane messages and packets
//! to a log, which can be used to answer diagnostic queries later" (§5.1).
//! Our log is finer-grained: every base insertion/deletion, derivation,
//! appearance and cross-node message becomes an [`ExecEvent`], and every
//! continuous existence interval of a tuple becomes a [`TupleRecord`]. The
//! provenance crate folds this log into the §3.1 provenance graph, and the
//! meta-provenance explorer replays it when expanding vertices.

use mpr_ndlog::{Tuple, Value};
use serde::{Deserialize, Serialize};

/// Logical timestamp (one tick per processed delta).
pub type Time = u64;

/// Identifier of one continuous existence interval of a tuple.
pub type TupleId = u64;

/// How a tuple came to exist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TupleKind {
    /// Inserted from outside (base tuple, §2.1).
    Base,
    /// Derived by a rule.
    Derived,
    /// A transient event tuple (event-table insert); exists for one instant.
    Event,
}

/// Lifetime record of one tuple instance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TupleRecord {
    /// Id (index into [`ExecLog::tuples`]).
    pub tid: TupleId,
    /// The tuple.
    pub tuple: Tuple,
    /// When it appeared.
    pub appear: Time,
    /// When it disappeared (`None` while still alive / for the final state).
    pub disappear: Option<Time>,
    /// Base / derived / event.
    pub kind: TupleKind,
}

impl TupleRecord {
    /// `true` if the tuple existed at time `t` (events exist only at their
    /// own instant).
    pub fn alive_at(&self, t: Time) -> bool {
        self.appear <= t && self.disappear.map_or(true, |d| t < d || self.appear == t)
    }
}

/// One logged event. Node values are the `@` locations involved.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecEvent {
    /// A base tuple was inserted (INSERT vertex, §3.1).
    InsertBase {
        /// Timestamp.
        time: Time,
        /// Inserted tuple instance.
        tid: TupleId,
    },
    /// A base tuple was deleted (DELETE).
    DeleteBase {
        /// Timestamp.
        time: Time,
        /// Deleted tuple instance.
        tid: TupleId,
    },
    /// A rule fired and derived `head` from `body` (DERIVE).
    Derive {
        /// Timestamp.
        time: Time,
        /// Rule id in the program.
        rule: String,
        /// Derived head tuple instance.
        head: TupleId,
        /// Body tuple instances, in body-atom order.
        body: Vec<TupleId>,
    },
    /// A derivation lost support (UNDERIVE).
    Underive {
        /// Timestamp.
        time: Time,
        /// Rule id.
        rule: String,
        /// Head tuple instance.
        head: TupleId,
        /// Body tuple instances.
        body: Vec<TupleId>,
    },
    /// A tuple appeared in the database (APPEAR).
    Appear {
        /// Timestamp.
        time: Time,
        /// Appearing tuple instance.
        tid: TupleId,
    },
    /// A tuple disappeared (DISAPPEAR).
    Disappear {
        /// Timestamp.
        time: Time,
        /// Disappearing tuple instance.
        tid: TupleId,
    },
    /// `±tuple` was shipped to a remote head location (SEND).
    Send {
        /// Timestamp.
        time: Time,
        /// Sending node.
        from: Value,
        /// Receiving node.
        to: Value,
        /// Tuple instance being shipped.
        tid: TupleId,
        /// `+τ` (true) or `-τ` (false).
        positive: bool,
    },
    /// The matching reception (RECEIVE).
    Receive {
        /// Timestamp.
        time: Time,
        /// Sending node.
        from: Value,
        /// Receiving node.
        to: Value,
        /// Tuple instance being shipped.
        tid: TupleId,
        /// `+τ` (true) or `-τ` (false).
        positive: bool,
    },
}

impl ExecEvent {
    /// Timestamp of the event.
    pub fn time(&self) -> Time {
        match self {
            ExecEvent::InsertBase { time, .. }
            | ExecEvent::DeleteBase { time, .. }
            | ExecEvent::Derive { time, .. }
            | ExecEvent::Underive { time, .. }
            | ExecEvent::Appear { time, .. }
            | ExecEvent::Disappear { time, .. }
            | ExecEvent::Send { time, .. }
            | ExecEvent::Receive { time, .. } => *time,
        }
    }
}

/// The full execution log.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecLog {
    /// Tuple lifetime records, indexed by [`TupleId`].
    pub tuples: Vec<TupleRecord>,
    /// Events in chronological order.
    pub events: Vec<ExecEvent>,
}

impl ExecLog {
    /// Lifetime record for a tuple instance.
    pub fn record(&self, tid: TupleId) -> &TupleRecord {
        &self.tuples[tid as usize]
    }

    /// All derivations whose head instance is `tid`.
    pub fn derivations_of(&self, tid: TupleId) -> Vec<&ExecEvent> {
        self.events
            .iter()
            .filter(|e| matches!(e, ExecEvent::Derive { head, .. } if *head == tid))
            .collect()
    }

    /// All tuple instances of `table` alive at time `t`.
    pub fn alive_at(&self, table: &str, t: Time) -> Vec<&TupleRecord> {
        self.tuples
            .iter()
            .filter(|r| r.tuple.table == table && r.alive_at(t))
            .collect()
    }

    /// Find instances matching an exact tuple (any lifetime).
    pub fn instances_of(&self, tuple: &Tuple) -> Vec<&TupleRecord> {
        self.tuples.iter().filter(|r| &r.tuple == tuple).collect()
    }

    /// Number of logged events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when nothing was logged.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Approximate serialized size of the log in bytes, used by the §5.4
    /// storage-overhead experiment. Mirrors the paper's 120-byte fixed
    /// entries: each event is charged a fixed header plus its tuple payload.
    pub fn storage_bytes(&self) -> u64 {
        const EVENT_HEADER: u64 = 16; // time + tag + tid
        let mut total = EVENT_HEADER * self.events.len() as u64;
        for r in &self.tuples {
            total += 8 // tid
                + r.tuple.table.len() as u64
                + 8 * (r.tuple.args.len() as u64 + 1);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(tid: TupleId, appear: Time, disappear: Option<Time>) -> TupleRecord {
        TupleRecord {
            tid,
            tuple: Tuple::new("T", 1i64, vec![Value::Int(tid as i64)]),
            appear,
            disappear,
            kind: TupleKind::Base,
        }
    }

    #[test]
    fn alive_at_intervals() {
        let r = rec(0, 5, Some(9));
        assert!(!r.alive_at(4));
        assert!(r.alive_at(5));
        assert!(r.alive_at(8));
        assert!(!r.alive_at(9));
        let r = rec(1, 5, None);
        assert!(r.alive_at(1_000_000));
        // instantaneous event: alive exactly at its instant
        let r = rec(2, 7, Some(7));
        assert!(r.alive_at(7));
        assert!(!r.alive_at(8));
    }

    #[test]
    fn log_queries() {
        let mut log = ExecLog::default();
        log.tuples.push(rec(0, 1, None));
        log.tuples.push(rec(1, 2, Some(5)));
        log.events.push(ExecEvent::Appear { time: 1, tid: 0 });
        log.events.push(ExecEvent::Derive { time: 2, rule: "r1".into(), head: 1, body: vec![0] });
        assert_eq!(log.derivations_of(1).len(), 1);
        assert_eq!(log.derivations_of(0).len(), 0);
        assert_eq!(log.alive_at("T", 3).len(), 2);
        assert_eq!(log.alive_at("T", 6).len(), 1);
        assert_eq!(log.len(), 2);
        assert!(!log.is_empty());
        assert!(log.storage_bytes() > 0);
        assert_eq!(log.record(1).tid, 1);
        let t = Tuple::new("T", 1i64, vec![Value::Int(0)]);
        assert_eq!(log.instances_of(&t).len(), 1);
    }

    #[test]
    fn event_times() {
        let e = ExecEvent::Send {
            time: 9,
            from: Value::str("C"),
            to: Value::Int(3),
            tid: 0,
            positive: true,
        };
        assert_eq!(e.time(), 9);
    }
}
