//! # mpr-runtime — the NDlog evaluation engine
//!
//! The runtime substrate of the reproduction: a deterministic semi-naive
//! datalog engine in the style of RapidNet (the paper's declarative SDN
//! environment, §5.1). Three evaluation strategies share one semantic core
//! (see [`engine::EvalStrategy`]): *batch* semi-naive iteration — whole
//! rounds of deltas joined through keyed hash indexes ([`index`]) with
//! stable/recent/delta partitions per relation ([`delta`]) — *sharded*
//! batch, which enumerates large rounds' join matches across a scoped
//! worker pool partitioned by relation/switch key while staying
//! bit-identical to single-threaded batch ([`shard`]), and the original
//! per-tuple *pipelined* propagation, kept as the differential baseline.
//! Shared machinery:
//!
//! - per-node tuple stores with primary-key replacement ([`store`]);
//! - support counting and cascading retraction (UNDERIVE/DISAPPEAR);
//! - transient *event* tables (`PacketIn` and friends) whose derivations
//!   persist (the OpenFlow install pattern);
//! - `a_count`/`a_min`/`a_max` head aggregates (used by the meta model);
//! - built-in functions `f_unique`, `f_match`, `f_join`, `f_apply` with a
//!   deterministic seed;
//! - a full execution log ([`log::ExecLog`]) of INSERT/DELETE, DERIVE/
//!   UNDERIVE, APPEAR/DISAPPEAR and SEND/RECEIVE events — the raw material
//!   for the §3.1 provenance graph — which can be switched off to measure
//!   the provenance overhead (§5.4);
//! - a naive fixpoint oracle ([`naive`]) for differential testing.

#![warn(missing_docs)]

pub(crate) mod batch;
pub mod codec;
pub mod delta;
pub mod engine;
pub mod index;
pub mod journal;
pub mod log;
pub mod naive;
pub mod shard;
pub mod store;

pub use delta::{DeltaTracker, RelationDeltaStats};
pub use engine::{
    CompileError, Durability, Engine, EvalStrategy, Options, RuntimeError, StepResult, WalOptions,
};
pub use index::{Col, IndexRegistry, IndexSpec};
pub use journal::{StoreOp, StoreRecovery};
pub use log::{ExecEvent, ExecLog, Time, TupleId, TupleKind, TupleRecord};
pub use store::{AddOutcome, DropOutcome, LiveTuple, Store};
