//! Per-relation delta partitions for batch semi-naive iteration.
//!
//! Classic semi-naive evaluation splits every relation into three
//! partitions:
//!
//! - **stable** — tuples merged in some earlier round; all joins between
//!   exclusively-stable tuples have already fired;
//! - **recent** — the round currently being joined (the Δ of the textbook
//!   formulation);
//! - **delta** — tuples produced during the current round, queued to become
//!   the next round's *recent* set.
//!
//! The engine drives the lifecycle: [`DeltaTracker::begin_round`] promotes
//! a pending batch to *recent*, [`DeltaTracker::end_round`] merges *recent*
//! into *stable*, and [`DeltaTracker::retire`] drops a tuple that died
//! (cascade retraction or primary-key replacement) from whichever partition
//! holds it. The join discipline reads [`DeltaTracker::is_recent`]: when
//! the delta tuple sits at body position `i`, positions `j > i` are
//! restricted to stable tuples, so each new body combination fires exactly
//! once per round instead of once per participating delta tuple.
//!
//! Rounds nest: an aggregate re-emission inside a cascade runs its own
//! fixpoint while an outer round is suspended, so frames form a stack and a
//! tuple is "recent" when any active frame holds it.
//!
//! The tracker also keeps a **mutation epoch** ([`DeltaTracker::epoch`]):
//! a counter bumped whenever the set of *visible* tuples can shrink or grow
//! mid-round — a tracked instance retires (kill/replacement cascade), or a
//! nested round begins (its fixpoint can merge brand-new tuples into the
//! stable partition before the outer round resumes). The sharded engine
//! ([`crate::shard`]) enumerates joins against round-start state in
//! parallel and consumes the results only while the epoch is unchanged;
//! any unit applied after a bump is recomputed sequentially, which keeps
//! sharded fixpoints bit-identical to single-threaded batch.
//!
//! Tuple instance ids are engine-global and dense, so the tracker stores
//! one slot per id in a flat vector — the join loop's visibility test
//! ([`DeltaTracker::visibility`]) is an array read, with no string hashing
//! on the probe path. Table names are interned once per relation and only
//! consulted by the name-taking diagnostic API.

use crate::log::TupleId;
use std::collections::HashMap;

/// One relation's stable/recent partition sizes (diagnostics).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationDeltaStats {
    /// Table name.
    pub table: String,
    /// Tuples merged into the stable partition.
    pub stable: usize,
    /// Tuples in the recent partition of some active round.
    pub recent: usize,
}

/// Where one tuple instance currently sits, as seen by the join loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Visibility {
    /// Not in any partition: never registered, retired, or still pending.
    Absent,
    /// Merged into the stable partition by some finished round.
    Stable,
    /// Recent in the innermost active round — the tuples the positional
    /// discipline excludes at body positions after the delta slot.
    RecentInnermost,
    /// Recent in a suspended outer round; joinable at every position.
    RecentOuter,
}

/// Partition membership of one tuple instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Untracked,
    Stable,
    /// Recent in the frame with this stack index.
    Recent(u32),
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    state: State,
    /// Interned id of the table the instance was registered under.
    table: u32,
}

const EMPTY_SLOT: Slot = Slot { state: State::Untracked, table: 0 };

/// The stable/recent/delta bookkeeping of a batch engine.
#[derive(Debug, Default)]
pub struct DeltaTracker {
    /// One slot per tuple instance id.
    slots: Vec<Slot>,
    /// Table name interner (ids index `tables` and the counters).
    table_ids: HashMap<String, u32>,
    tables: Vec<String>,
    /// Stack of active rounds, innermost last: the instances each round
    /// promoted to recent.
    frames: Vec<Vec<TupleId>>,
    /// Per-table partition sizes, indexed by interned table id.
    stable_count: Vec<usize>,
    recent_count: Vec<usize>,
    /// Mutation epoch: bumped on tracked retires and nested round starts
    /// (see the module docs). Monotonic within one engine.
    epoch: u64,
}

impl DeltaTracker {
    fn intern(&mut self, table: &str) -> u32 {
        if let Some(&id) = self.table_ids.get(table) {
            return id;
        }
        let id = self.tables.len() as u32;
        self.table_ids.insert(table.to_string(), id);
        self.tables.push(table.to_string());
        self.stable_count.push(0);
        self.recent_count.push(0);
        id
    }

    fn slot(&self, tid: TupleId) -> Slot {
        self.slots.get(tid as usize).copied().unwrap_or(EMPTY_SLOT)
    }

    /// `true` when the slot matches `table` — the name-taking API never
    /// reports an instance under a table it was not registered with.
    fn named(&self, slot: Slot, table: &str) -> bool {
        self.tables.get(slot.table as usize).is_some_and(|t| t == table)
    }

    /// Start a round over `batch`: the batch becomes the innermost recent
    /// partition. Tuples already retired are the caller's concern (the
    /// engine filters dead instances before joining).
    pub fn begin_round<I, S>(&mut self, batch: I)
    where
        I: IntoIterator<Item = (TupleId, S)>,
        S: AsRef<str>,
    {
        let frame_idx = self.frames.len() as u32;
        // A nested round's fixpoint can merge tuples the suspended outer
        // round has never seen, so its start invalidates enumerated state.
        if frame_idx > 0 {
            self.epoch += 1;
        }
        let mut frame = Vec::new();
        for (tid, table) in batch {
            let table = self.intern(table.as_ref());
            debug_assert!(
                self.slot(tid).state == State::Untracked,
                "tuple {tid} joined a round while already tracked"
            );
            if self.slots.len() <= tid as usize {
                self.slots.resize(tid as usize + 1, EMPTY_SLOT);
            }
            self.slots[tid as usize] = Slot { state: State::Recent(frame_idx), table };
            self.recent_count[table as usize] += 1;
            frame.push(tid);
        }
        self.frames.push(frame);
    }

    /// Finish the innermost round: its recent tuples become stable.
    ///
    /// # Panics
    /// Panics if no round is active.
    pub fn end_round(&mut self) {
        let frame = self.frames.pop().expect("end_round without begin_round");
        let frame_idx = self.frames.len() as u32;
        for tid in frame {
            let slot = &mut self.slots[tid as usize];
            // Retired mid-round instances left the partitions already.
            if slot.state == State::Recent(frame_idx) {
                slot.state = State::Stable;
                self.recent_count[slot.table as usize] -= 1;
                self.stable_count[slot.table as usize] += 1;
            }
        }
    }

    /// Partition membership of one instance, for the join loop's
    /// visibility test — a single array read.
    pub fn visibility(&self, tid: TupleId) -> Visibility {
        match self.slot(tid).state {
            State::Untracked => Visibility::Absent,
            State::Stable => Visibility::Stable,
            State::Recent(f) if f as usize + 1 == self.frames.len() => {
                Visibility::RecentInnermost
            }
            State::Recent(_) => Visibility::RecentOuter,
        }
    }

    /// `true` while `tid` of `table` sits in the recent partition of any
    /// active round.
    pub fn is_recent(&self, table: &str, tid: TupleId) -> bool {
        let slot = self.slot(tid);
        matches!(slot.state, State::Recent(_)) && self.named(slot, table)
    }

    /// `true` while `tid` of `table` is recent in the *innermost* active
    /// round. The positional join discipline excludes only these: a
    /// suspended outer round's recent tuples must stay joinable from a
    /// nested fixpoint (the outer round cannot revisit combinations with
    /// tuples that did not exist when its deltas fired).
    pub fn in_current_round(&self, table: &str, tid: TupleId) -> bool {
        self.visibility(tid) == Visibility::RecentInnermost
            && self.named(self.slot(tid), table)
    }

    /// Drop a dead tuple instance from every partition.
    pub fn retire(&mut self, table: &str, tid: TupleId) {
        let slot = self.slot(tid);
        if !self.named(slot, table) {
            return;
        }
        match slot.state {
            State::Untracked => return,
            State::Stable => self.stable_count[slot.table as usize] -= 1,
            State::Recent(_) => self.recent_count[slot.table as usize] -= 1,
        }
        self.slots[tid as usize].state = State::Untracked;
        // A visible tuple left the partitions: enumerated joins that used
        // it as a candidate are stale.
        self.epoch += 1;
    }

    /// The mutation epoch (see the module docs). Unchanged epoch across a
    /// span of the round loop means no tracked retire and no nested round
    /// happened in that span — the visible candidate set is intact.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of active (nested) rounds.
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// Per-relation partition sizes, sorted by table name.
    pub fn stats(&self) -> Vec<RelationDeltaStats> {
        let mut stats: Vec<RelationDeltaStats> = self
            .tables
            .iter()
            .enumerate()
            .map(|(i, t)| RelationDeltaStats {
                table: t.clone(),
                stable: self.stable_count[i],
                recent: self.recent_count[i],
            })
            .collect();
        stats.sort_by(|a, b| a.table.cmp(&b.table));
        stats
    }

    /// Total tuples across stable partitions.
    pub fn stable_len(&self) -> usize {
        self.stable_count.iter().sum()
    }

    /// Total tuples across recent partitions of active rounds.
    pub fn recent_len(&self) -> usize {
        self.recent_count.iter().sum()
    }

    /// `true` when `tid` of `table` is tracked in the stable partition.
    pub fn is_stable(&self, table: &str, tid: TupleId) -> bool {
        let slot = self.slot(tid);
        slot.state == State::Stable && self.named(slot, table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_lifecycle_moves_recent_to_stable() {
        let mut d = DeltaTracker::default();
        d.begin_round(vec![(0, "A"), (1, "B")]);
        assert!(d.is_recent("A", 0));
        assert!(!d.is_stable("A", 0));
        assert_eq!(d.visibility(0), Visibility::RecentInnermost);
        assert_eq!(d.recent_len(), 2);
        d.end_round();
        assert!(!d.is_recent("A", 0));
        assert!(d.is_stable("A", 0));
        assert_eq!(d.visibility(0), Visibility::Stable);
        assert_eq!(d.stable_len(), 2);
        assert_eq!(d.recent_len(), 0);
    }

    #[test]
    fn nested_rounds_stack() {
        let mut d = DeltaTracker::default();
        d.begin_round(vec![(0, "A")]);
        d.begin_round(vec![(1, "A")]);
        assert_eq!(d.depth(), 2);
        assert!(d.is_recent("A", 0), "outer frame still recent");
        assert!(d.is_recent("A", 1));
        assert!(d.in_current_round("A", 1));
        assert!(!d.in_current_round("A", 0), "outer recent is not innermost");
        assert_eq!(d.visibility(0), Visibility::RecentOuter);
        assert_eq!(d.visibility(1), Visibility::RecentInnermost);
        d.end_round();
        assert!(d.is_stable("A", 1));
        assert!(d.is_recent("A", 0));
        assert_eq!(d.visibility(0), Visibility::RecentInnermost);
        d.end_round();
        assert!(d.is_stable("A", 0));
    }

    #[test]
    fn retire_removes_from_all_partitions() {
        let mut d = DeltaTracker::default();
        d.begin_round(vec![(0, "A")]);
        d.end_round();
        d.begin_round(vec![(1, "A")]);
        d.retire("A", 0);
        d.retire("A", 1);
        assert!(!d.is_stable("A", 0));
        assert!(!d.is_recent("A", 1));
        assert_eq!(d.visibility(0), Visibility::Absent);
        assert_eq!(d.visibility(1), Visibility::Absent);
        d.end_round();
        assert_eq!(d.stable_len(), 0);
    }

    #[test]
    fn retire_checks_the_table_name() {
        let mut d = DeltaTracker::default();
        d.begin_round(vec![(0, "A")]);
        d.end_round();
        d.retire("B", 0); // wrong table: a no-op
        assert!(d.is_stable("A", 0));
        assert!(!d.is_stable("B", 0));
        assert_eq!(d.stable_len(), 1);
    }

    #[test]
    fn epoch_tracks_retires_and_nested_rounds() {
        let mut d = DeltaTracker::default();
        let e0 = d.epoch();
        d.begin_round(vec![(0, "A"), (1, "A")]);
        assert_eq!(d.epoch(), e0, "a top-level round start is not a mutation");
        d.retire("A", 0);
        assert!(d.epoch() > e0, "tracked retire bumps the epoch");
        let e1 = d.epoch();
        d.retire("A", 7); // never tracked: visibility cannot have changed
        assert_eq!(d.epoch(), e1);
        d.begin_round(vec![(2, "B")]); // nested round
        assert!(d.epoch() > e1);
        d.end_round();
        d.end_round();
    }

    #[test]
    fn stats_report_per_relation() {
        let mut d = DeltaTracker::default();
        d.begin_round(vec![(0, "A"), (1, "A")]);
        d.end_round();
        d.begin_round(vec![(2, "B")]);
        let stats = d.stats();
        assert_eq!(
            stats,
            vec![
                RelationDeltaStats { table: "A".into(), stable: 2, recent: 0 },
                RelationDeltaStats { table: "B".into(), stable: 0, recent: 1 },
            ]
        );
    }
}
