//! A naive fixpoint evaluator, used as a differential-testing oracle for
//! the pipelined engine.
//!
//! It repeatedly evaluates every rule against the full store until nothing
//! changes. It supports only state tables, no aggregates, and no
//! `f_unique()` — the fragment on which set-semantics equivalence with the
//! incremental engine is meaningful.

use crate::engine::{instantiate, match_atom};
use mpr_ndlog::eval::{Env, PureFuncs};
use mpr_ndlog::{Program, Tuple};
use std::collections::BTreeSet;

/// Evaluate `program` over `base` tuples to fixpoint; returns all tuples
/// (base and derived). Panics if the fixpoint exceeds `max_iters` rounds.
pub fn naive_fixpoint(program: &Program, base: &[Tuple], max_iters: usize) -> BTreeSet<Tuple> {
    let mut all: BTreeSet<Tuple> = base.iter().cloned().collect();
    for _ in 0..max_iters {
        let mut new: Vec<Tuple> = Vec::new();
        for rule in &program.rules {
            let envs = join_all(rule, &all);
            'env: for mut env in envs {
                let mut funcs = PureFuncs;
                for a in &rule.assigns {
                    let Ok(v) = a.expr.eval(&env, &mut funcs) else {
                        continue 'env;
                    };
                    match env.get(&a.var) {
                        Some(existing) if existing != &v => continue 'env,
                        _ => {
                            env.insert(a.var.clone(), v);
                        }
                    }
                }
                for s in &rule.sels {
                    match s.eval(&env, &mut funcs) {
                        Ok(true) => {}
                        _ => continue 'env,
                    }
                }
                if let Some(head) = instantiate(&rule.head, &env) {
                    if !all.contains(&head) {
                        new.push(head);
                    }
                }
            }
        }
        if new.is_empty() {
            return all;
        }
        all.extend(new);
    }
    panic!("naive fixpoint did not converge in {max_iters} iterations");
}

fn join_all(rule: &mpr_ndlog::Rule, all: &BTreeSet<Tuple>) -> Vec<Env> {
    let mut envs = vec![Env::new()];
    for atom in &rule.body {
        let mut next = Vec::new();
        for env in &envs {
            for t in all.iter().filter(|t| t.table == atom.table) {
                if let Some(e2) = match_atom(atom, t, env) {
                    next.push(e2);
                }
            }
        }
        envs = next;
        if envs.is_empty() {
            break;
        }
    }
    envs
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpr_ndlog::{parse_program, Value};

    #[test]
    fn transitive_closure_matches_hand_count() {
        let p = parse_program(
            "tc",
            r"
            r1 Reach(@C,X,Y) :- Link(@C,X,Y), X != Y.
            r2 Reach(@C,X,Z) :- Reach(@C,X,Y), Link(@C,Y,Z), X != Z.
            ",
        )
        .unwrap();
        let c = Value::str("C");
        let base: Vec<Tuple> = [(1, 2), (2, 3), (3, 4)]
            .iter()
            .map(|&(a, b)| Tuple::new("Link", c.clone(), vec![Value::Int(a), Value::Int(b)]))
            .collect();
        let out = naive_fixpoint(&p, &base, 50);
        let reach = out.iter().filter(|t| t.table == "Reach").count();
        assert_eq!(reach, 6);
    }

    #[test]
    #[should_panic(expected = "did not converge")]
    fn divergence_is_detected() {
        let p = parse_program("inf", "r1 A(@C,Y) :- A(@C,X), X < 1000000, Y := X + 1.").unwrap();
        let base = vec![Tuple::new("A", Value::str("C"), vec![Value::Int(0)])];
        naive_fixpoint(&p, &base, 10);
    }
}
