//! Store-mutation journaling: the codec and bookkeeping that sit between
//! [`crate::store::Store`] and an [`mpr_storage::StorageBackend`].
//!
//! Every effectful store mutation — schema declaration, support add/drop,
//! eviction — is journaled as one [`StoreOp`] record *as it happens*, so a
//! crash at any WAL byte offset lands between two ops and recovery replays
//! an exact op prefix (mid-fixpoint granularity, not just step
//! granularity). Snapshots serialize the whole store deterministically
//! (sorted schemas, then sorted tuples with their support counts), so two
//! identical stores always produce byte-identical snapshots.
//!
//! Durability failures never take the engine down: the first backend error
//! flips the journal into a degraded state (recorded, queryable via
//! [`crate::store::Store::durability_degraded`]) and evaluation continues
//! memory-only — mirroring the chaos harness's graceful-degradation ladder.

use crate::codec::{put_schema, put_tuple, put_u32, Reader};
use mpr_ndlog::{Schema, Tuple};
use mpr_storage::{Recovery, StorageBackend, StorageError};
use std::fmt;

/// One journaled store mutation. `Add`/`Drop` carry the *request* (tuple +
/// base flag), not the outcome: outcomes are a deterministic function of
/// the store state, so replaying requests in order reproduces the state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreOp {
    /// Register a table schema (keying semantics must be in the journal
    /// *before* any tuple op on the table, or replay would key wrongly).
    Declare(Schema),
    /// One unit of support added.
    Add {
        /// The tuple.
        tuple: Tuple,
        /// Base insertion (`true`) vs derivation (`false`).
        base: bool,
    },
    /// One unit of support dropped.
    Drop {
        /// The tuple.
        tuple: Tuple,
        /// Base deletion (`true`) vs underivation (`false`).
        base: bool,
    },
    /// Forced removal of an exact instance (replacement cascades).
    Evict {
        /// The tuple.
        tuple: Tuple,
    },
}

// ---------------------------------------------------------------------------
// op codec (on top of crate::codec)

/// Encode one op as a WAL record payload.
pub fn encode_op(op: &StoreOp) -> Vec<u8> {
    let mut buf = Vec::with_capacity(48);
    match op {
        StoreOp::Declare(s) => {
            buf.push(0);
            put_schema(&mut buf, s);
        }
        StoreOp::Add { tuple, base } => {
            buf.push(1);
            buf.push(u8::from(*base));
            put_tuple(&mut buf, tuple);
        }
        StoreOp::Drop { tuple, base } => {
            buf.push(2);
            buf.push(u8::from(*base));
            put_tuple(&mut buf, tuple);
        }
        StoreOp::Evict { tuple } => {
            buf.push(3);
            put_tuple(&mut buf, tuple);
        }
    }
    buf
}

/// Decode one WAL record payload back into an op.
pub fn decode_op(bytes: &[u8]) -> Result<StoreOp, String> {
    let mut r = Reader::new(bytes);
    let op = match r.u8()? {
        0 => StoreOp::Declare(r.schema()?),
        1 => {
            let base = r.u8()? != 0;
            StoreOp::Add { tuple: r.tuple()?, base }
        }
        2 => {
            let base = r.u8()? != 0;
            StoreOp::Drop { tuple: r.tuple()?, base }
        }
        3 => StoreOp::Evict { tuple: r.tuple()? },
        t => return Err(format!("unknown op tag {t}")),
    };
    r.finish()?;
    Ok(op)
}

// ---------------------------------------------------------------------------
// snapshot codec

/// Version byte of the snapshot payload format.
pub const SNAPSHOT_VERSION: u8 = 1;

/// Serialize a full store state (schemas + live tuples with support
/// counts). Both sections are sorted — schemas by table, tuples by their
/// total order — so identical states yield byte-identical snapshots.
pub fn encode_snapshot(schemas: &[Schema], entries: &[(Tuple, u32, u32)]) -> Vec<u8> {
    debug_assert!(schemas.windows(2).all(|w| w[0].table <= w[1].table));
    debug_assert!(entries.windows(2).all(|w| w[0].0 <= w[1].0));
    let mut buf = Vec::with_capacity(64 + entries.len() * 32);
    buf.push(SNAPSHOT_VERSION);
    put_u32(&mut buf, schemas.len() as u32);
    for s in schemas {
        put_schema(&mut buf, s);
    }
    put_u32(&mut buf, entries.len() as u32);
    for (t, base, deriv) in entries {
        put_tuple(&mut buf, t);
        put_u32(&mut buf, *base);
        put_u32(&mut buf, *deriv);
    }
    buf
}

/// Decode a snapshot payload.
#[allow(clippy::type_complexity)]
pub fn decode_snapshot(bytes: &[u8]) -> Result<(Vec<Schema>, Vec<(Tuple, u32, u32)>), String> {
    let mut r = Reader::new(bytes);
    let v = r.u8()?;
    if v != SNAPSHOT_VERSION {
        return Err(format!("unsupported snapshot version {v}"));
    }
    let ns = r.u32()? as usize;
    if ns > 1 << 24 {
        return Err(format!("implausible schema count {ns}"));
    }
    let mut schemas = Vec::with_capacity(ns);
    for _ in 0..ns {
        schemas.push(r.schema()?);
    }
    let nt = r.u32()? as usize;
    if nt > 1 << 28 {
        return Err(format!("implausible tuple count {nt}"));
    }
    let mut entries = Vec::with_capacity(nt);
    for _ in 0..nt {
        let t = r.tuple()?;
        let base = r.u32()?;
        let deriv = r.u32()?;
        entries.push((t, base, deriv));
    }
    r.finish()?;
    Ok((schemas, entries))
}

// ---------------------------------------------------------------------------
// the journal

/// The store's handle on a storage backend: encodes ops, counts records
/// toward the compaction threshold, and degrades gracefully on the first
/// backend failure instead of propagating it into evaluation.
pub struct Journal {
    backend: Box<dyn StorageBackend>,
    compact_every: usize,
    since_compact: usize,
    degraded: Option<String>,
}

impl fmt::Debug for Journal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Journal")
            .field("backend", &self.backend.name())
            .field("compact_every", &self.compact_every)
            .field("since_compact", &self.since_compact)
            .field("degraded", &self.degraded)
            .finish()
    }
}

impl Journal {
    /// Wrap `backend`; a snapshot is installed every `compact_every` ops
    /// (0 disables compaction).
    pub fn new(backend: Box<dyn StorageBackend>, compact_every: usize) -> Self {
        Journal { backend, compact_every, since_compact: 0, degraded: None }
    }

    /// Why journaling shut itself off, if it did.
    pub fn degraded(&self) -> Option<&str> {
        self.degraded.as_deref()
    }

    fn degrade(&mut self, during: &str, e: StorageError) {
        if self.degraded.is_none() {
            self.degraded = Some(format!("{during}: {e}"));
        }
    }

    /// Append one op; errors degrade instead of propagating.
    pub fn append_op(&mut self, op: &StoreOp) {
        if self.degraded.is_some() {
            return;
        }
        let rec = encode_op(op);
        match self.backend.append(&rec) {
            Ok(_) => self.since_compact += 1,
            Err(e) => self.degrade("append", e),
        }
    }

    /// `true` when the op count since the last snapshot crossed the
    /// threshold (and the journal is still healthy).
    pub fn compaction_due(&self) -> bool {
        self.degraded.is_none() && self.compact_every > 0 && self.since_compact >= self.compact_every
    }

    /// Install a compacted snapshot, resetting the op counter.
    pub fn install_snapshot(&mut self, snapshot: &[u8]) {
        if self.degraded.is_some() {
            return;
        }
        match self.backend.install_snapshot(snapshot) {
            Ok(()) => self.since_compact = 0,
            Err(e) => self.degrade("install-snapshot", e),
        }
    }

    /// Flush buffered writes (step/round boundaries).
    pub fn flush(&mut self) {
        if self.degraded.is_some() {
            return;
        }
        if let Err(e) = self.backend.flush() {
            self.degrade("flush", e);
        }
    }

    /// `(records in current WAL segment, WAL bytes)` — diagnostics.
    pub fn stats(&self) -> (usize, u64) {
        (self.backend.record_count(), self.backend.wal_bytes())
    }

    /// The backend's stable name (`"mem"`, `"wal"`).
    pub fn backend_name(&self) -> &'static str {
        self.backend.name()
    }
}

/// What a [`crate::store::Store::recover`] found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreRecovery {
    /// Clean, or recovered with a typed loss report (from the backend).
    pub status: Recovery,
    /// Whether a compacted snapshot was restored under the replayed ops.
    pub snapshot_restored: bool,
    /// Ops decoded and replayed from the WAL.
    pub ops_applied: usize,
    /// WAL records that survived checksumming but failed to decode
    /// (format drift; everything from the first such record on is skipped).
    pub ops_skipped: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpr_ndlog::Value;

    fn tuples() -> Vec<Tuple> {
        vec![
            Tuple::new("FlowTable", 3i64, vec![Value::Int(80), Value::Int(2)]),
            Tuple::new("Link", Value::Str("s1".into()), vec![Value::Bool(true), Value::Wild]),
        ]
    }

    #[test]
    fn op_codec_round_trips() {
        let ops = vec![
            StoreOp::Declare(Schema::state_keyed("FlowTable", 2, vec![0])),
            StoreOp::Declare(Schema::event("PacketIn", 3)),
            StoreOp::Add { tuple: tuples()[0].clone(), base: true },
            StoreOp::Add { tuple: tuples()[1].clone(), base: false },
            StoreOp::Drop { tuple: tuples()[0].clone(), base: false },
            StoreOp::Evict { tuple: tuples()[1].clone() },
        ];
        for op in ops {
            let enc = encode_op(&op);
            assert_eq!(decode_op(&enc).unwrap(), op, "round-trip failed for {op:?}");
        }
    }

    #[test]
    fn decode_rejects_truncation_and_trailing_garbage() {
        let enc = encode_op(&StoreOp::Add { tuple: tuples()[0].clone(), base: true });
        for cut in 0..enc.len() {
            assert!(decode_op(&enc[..cut]).is_err(), "truncation at {cut} accepted");
        }
        let mut padded = enc.clone();
        padded.push(0);
        assert!(decode_op(&padded).is_err(), "trailing byte accepted");
        assert!(decode_op(&[9]).is_err(), "unknown tag accepted");
    }

    #[test]
    fn snapshot_codec_round_trips() {
        let schemas = vec![
            Schema::state_keyed("A", 2, vec![0]),
            Schema::event("B", 1),
        ];
        let mut entries: Vec<(Tuple, u32, u32)> =
            tuples().into_iter().map(|t| (t, 2, 1)).collect();
        entries.sort();
        let enc = encode_snapshot(&schemas, &entries);
        let (s2, e2) = decode_snapshot(&enc).unwrap();
        assert_eq!(s2, schemas);
        assert_eq!(e2, entries);
        // Determinism: encoding the same state twice is byte-identical.
        assert_eq!(enc, encode_snapshot(&schemas, &entries));
    }

    #[test]
    fn snapshot_decode_never_panics_on_garbage() {
        for len in 0..64usize {
            let junk: Vec<u8> = (0..len).map(|i| (i * 37 + 11) as u8).collect();
            let _ = decode_snapshot(&junk); // must return, not panic
        }
        assert!(decode_snapshot(&[7]).is_err(), "bad version accepted");
    }
}
