//! Sharded parallel round enumeration for the batch engine
//! ([`crate::engine::EvalStrategy::Shards`]).
//!
//! # How a round parallelizes without changing its answer
//!
//! `Engine::drain_batch` fires a round's deltas strictly in order; firings
//! mutate the engine, so the loop itself cannot be split across threads.
//! What *can* run in parallel is the expensive read-only part: enumerating
//! the join matches each `(delta, trigger)` pair produces against the
//! round-start state. This module does exactly that — between
//! `begin_round` and the apply loop, the round's work is partitioned by a
//! relation/switch shard key and each [`std::thread::scope`] worker
//! enumerates its shard's units against the frozen engine (`&Engine`:
//! indexes, tuple log, delta partitions are all read-only here). The apply
//! loop then walks the *exact* sequential order and, for each unit, either
//! consumes the precomputed matches or — when the engine has been mutated
//! in a way enumeration could observe — recomputes them via the ordinary
//! sequential `fire_batch`.
//!
//! Staleness is detected with the [`DeltaTracker`] mutation epoch
//! ([`crate::delta`]): it bumps on every tracked retire (kills,
//! primary-key replacement cascades) and on nested round starts — the only
//! mid-round events that change which tuples a probe may see. Tuples
//! *added* mid-round never need a bump: they enter the tracker as
//! `Absent`, which the batch visibility predicate (`batch.rs`) already hides
//! from every probe, so enumeration (which never saw them) and a
//! sequential recomputation (which filters them out) agree. Selections are
//! evaluated on workers with the stateless [`PureFuncs`] host; the engine
//! only takes this path when no selection contains a function call
//! (`Engine::par_safe`), so the stateful `f_unique` counter — which only
//! assignments may touch, and assignments only ever run in the sequential
//! apply step — sees the exact same call sequence as a single-threaded
//! run. The result: fixpoints, provenance logs, and derivation counts are
//! bit-identical to [`crate::engine::EvalStrategy::Batch`] by
//! construction, which `tests/differential.rs` locks in across the random
//! program suite.

use crate::batch::joinable;
use crate::delta::DeltaTracker;
use crate::engine::{match_atom, resolve_term, CompiledRule, Engine, RuntimeError, StepResult};
use crate::index::IndexRegistry;
use crate::log::{ExecLog, TupleId, TupleKind};
use mpr_ndlog::eval::{Env, PureFuncs};
use mpr_ndlog::Tuple;
use std::collections::hash_map::DefaultHasher;
use std::collections::VecDeque;
use std::hash::{Hash, Hasher};

/// Everything the scoped workers share is a plain borrow of the engine, so
/// the engine itself must be shareable across threads. This holds because
/// the crate is `Rc`/`RefCell`-free — enforce it at compile time so a
/// future interior-mutability field fails here, not in a race. The store's
/// durability journal rides along: `StorageBackend` is `Send + Sync` by
/// trait bound, and only the sequential apply loop ever appends (workers
/// hold `&Engine`, and every journal write needs `&mut Store`), so a
/// journaled engine shards exactly like a memory-only one.
const _: fn() = || {
    fn requires_send_sync<T: Send + Sync>() {}
    requires_send_sync::<Engine>();
};

/// One join match as `fire_batch` builds them: the environment after all
/// extensions, the body tuple ids in *extension* order (delta first), and
/// the per-selection done flags.
pub(crate) type Matches = Vec<(Env, Vec<TupleId>, Vec<bool>)>;

/// Key of one enumerable unit: `(pending index, trigger sequence number)`
/// in the merged keyed/rest trigger order — exactly the order the apply
/// loop visits, so consumption is strictly monotone in this key.
type UnitKey = (usize, usize);

/// The precomputed matches of one round, consumed in apply order.
pub(crate) struct RoundEnumeration {
    /// `DeltaTracker` epoch the round was enumerated at; any bump means
    /// every remaining unit may be stale.
    epoch: u64,
    /// `(key, matches)` sorted by key.
    units: Vec<(UnitKey, Matches)>,
    /// First unit not yet consumed or skipped.
    cursor: usize,
}

impl RoundEnumeration {
    /// Hand out the matches enumerated for `key`, or `None` when the apply
    /// loop must recompute sequentially: the engine has mutated since
    /// enumeration (`now_epoch` moved), or the unit was never enumerated.
    /// Units for deltas the apply loop skipped (died mid-round) are
    /// discarded in passing — the key order is the apply order.
    pub(crate) fn take(&mut self, key: UnitKey, now_epoch: u64) -> Option<Matches> {
        if now_epoch != self.epoch {
            return None;
        }
        while self.cursor < self.units.len() && self.units[self.cursor].0 < key {
            self.cursor += 1;
        }
        if self.cursor < self.units.len() && self.units[self.cursor].0 == key {
            let matches = std::mem::take(&mut self.units[self.cursor].1);
            self.cursor += 1;
            Some(matches)
        } else {
            None
        }
    }
}

/// The frozen round-start state a worker enumerates against.
#[derive(Clone, Copy)]
struct RoundCtx<'a> {
    rules: &'a [CompiledRule],
    plans: &'a [crate::batch::RulePlan],
    indexes: &'a IndexRegistry,
    log: &'a ExecLog,
    deltas: &'a DeltaTracker,
}

/// One unit of parallel work: enumerate the matches of rule `rule_idx`
/// with the delta bound at body position `atom_idx`.
struct Unit<'a> {
    key: UnitKey,
    rule_idx: usize,
    atom_idx: usize,
    tid: TupleId,
    tuple: &'a Tuple,
}

/// Shard assignment: all of a relation's deltas at one location land on
/// the same worker. `DefaultHasher::new()` is unkeyed, so the partition —
/// though it never affects results, only which thread computes what — is
/// reproducible across runs.
fn shard_of(tuple: &Tuple, workers: usize) -> usize {
    let mut h = DefaultHasher::new();
    tuple.table.hash(&mut h);
    tuple.loc.hash(&mut h);
    (h.finish() % workers as u64) as usize
}

/// Enumerate the whole round's join matches across a scoped worker pool.
/// Call after `begin_round` and before the first firing; the caller gates
/// on worker count, `par_safe`, and `shard_min_round`.
pub(crate) fn enumerate_round(
    e: &Engine,
    pending: &VecDeque<(TupleId, Tuple)>,
) -> RoundEnumeration {
    let workers = e.strategy().workers();
    let mut units: Vec<Unit<'_>> = Vec::new();
    for (idx, (tid, tuple)) in pending.iter().enumerate() {
        let rec = &e.log.tuples[*tid as usize];
        if rec.kind != TupleKind::Event && rec.disappear.is_some() {
            continue;
        }
        let Some(dispatch) = e.batch_dispatch.get(&tuple.table) else {
            continue;
        };
        for (seq, (rule_idx, atom_idx)) in dispatch.triggers_for(tuple).enumerate() {
            // Aggregate triggers mutate group state; they stay sequential.
            if e.rules[rule_idx].agg.is_some() {
                continue;
            }
            units.push(Unit { key: (idx, seq), rule_idx, atom_idx, tid: *tid, tuple });
        }
    }
    let epoch = e.deltas.epoch();
    let ctx = RoundCtx {
        rules: &e.rules,
        plans: &e.plans,
        indexes: &e.indexes,
        log: &e.log,
        deltas: &e.deltas,
    };
    // Partition unit indices by shard, one bucket per worker.
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); workers];
    for (ui, u) in units.iter().enumerate() {
        buckets[shard_of(u.tuple, workers)].push(ui);
    }
    let mut enumerated: Vec<(UnitKey, Matches)> = Vec::with_capacity(units.len());
    let inject_panic = e.opts.inject_worker_panic;
    std::thread::scope(|scope| {
        let units = &units;
        let handles: Vec<_> = buckets
            .iter()
            .filter(|b| !b.is_empty())
            .map(|bucket| {
                scope.spawn(move || {
                    // Enumeration is read-only, so a panicking worker can
                    // poison nothing: contain it and let the bucket come
                    // up empty. `AssertUnwindSafe` is justified because
                    // the closure only *reads* through `ctx`/`units` and
                    // its partial results are dropped on unwind.
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        if inject_panic {
                            panic!("injected shard worker panic (Options::inject_worker_panic)");
                        }
                        bucket
                            .iter()
                            .map(|&ui| {
                                let u = &units[ui];
                                (u.key, enumerate_unit(ctx, u))
                            })
                            .collect::<Vec<_>>()
                    }))
                })
            })
            .collect();
        for h in handles {
            // Graceful degradation instead of the old process abort: a
            // worker that panicked (or whose thread died before joining)
            // simply contributes no precomputed units. `take` then misses
            // those keys and the apply loop recomputes each one through
            // the sequential `fire_batch`, so the fixpoint — and the
            // execution log — stay bit-identical; only wall-clock suffers.
            match h.join() {
                Ok(Ok(chunk)) => enumerated.extend(chunk),
                Ok(Err(_)) | Err(_) => {
                    e.shard_panics.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
            }
        }
    });
    // The apply loop consumes keys in increasing order; restore it across
    // the per-worker result chunks.
    enumerated.sort_unstable_by_key(|&(key, _)| key);
    RoundEnumeration { epoch, units: enumerated, cursor: 0 }
}

/// Read-only mirror of `Engine::fire_batch` up to (but excluding) the
/// firing step: prefilter, delta unification, then index-probe extensions
/// in plan order. Candidate ids come out of `BTreeSet` buckets, so the
/// match order is identical to the sequential loop's.
fn enumerate_unit(ctx: RoundCtx<'_>, u: &Unit<'_>) -> Matches {
    let plan = &ctx.plans[u.rule_idx].delta_plans[u.atom_idx];
    for &(col, ref want) in &plan.prefilter {
        let got = if col == 0 { Some(&u.tuple.loc) } else { u.tuple.args.get(col - 1) };
        match got {
            Some(v) if mpr_ndlog::ast::CmpOp::Eq.eval(v, want) => {}
            _ => return Vec::new(),
        }
    }
    let cr = &ctx.rules[u.rule_idx];
    let Some(env0) = match_atom(&cr.rule.body[u.atom_idx], u.tuple, &Env::new()) else {
        return Vec::new();
    };
    let mut sel_done = vec![false; cr.rule.sels.len()];
    if !eval_ready_sels_pure(cr, &env0, &mut sel_done) {
        return Vec::new();
    }
    let mut matches: Matches = vec![(env0, vec![u.tid], sel_done)];
    for ap in &plan.atoms {
        let mut next: Matches = Vec::new();
        for (env, tids, sels) in &matches {
            let mut key = Vec::with_capacity(ap.key_terms.len());
            for t in &ap.key_terms {
                match resolve_term(t, env) {
                    Some(v) => key.push(v),
                    // Mirrors `fire_batch`: unreachable by construction,
                    // and the whole unit comes up empty if it ever isn't.
                    None => return Vec::new(),
                }
            }
            for ctid in ctx
                .indexes
                .probe(ap.index_id, &key)
                .filter(|&tid| joinable(ctx.deltas, tid, ap.exclude_recent))
            {
                let ctuple = &ctx.log.tuples[ctid as usize].tuple;
                let Some(env2) = match_atom(&cr.rule.body[ap.atom_idx], ctuple, env) else {
                    continue;
                };
                let mut sels2 = sels.clone();
                if !eval_ready_sels_pure(cr, &env2, &mut sels2) {
                    continue;
                }
                let mut tids2 = tids.clone();
                tids2.push(ctid);
                next.push((env2, tids2, sels2));
            }
        }
        matches = next;
        if matches.is_empty() {
            return matches;
        }
    }
    matches
}

/// `Engine::eval_ready_sels` with the stateless host: evaluate every
/// not-yet-done selection whose variables are all bound. Only called on
/// `par_safe` programs, where no selection contains a function call, so
/// the results (and the untouched `f_unique` stream) match the sequential
/// path exactly.
fn eval_ready_sels_pure(cr: &CompiledRule, env: &Env, done: &mut [bool]) -> bool {
    for i in 0..done.len() {
        if done[i] {
            continue;
        }
        if cr.sel_vars[i].iter().all(|v| env.contains_key(v)) {
            match cr.rule.sels[i].eval(env, &mut PureFuncs) {
                Ok(true) => done[i] = true,
                _ => return false,
            }
        }
    }
    true
}

impl Engine {
    /// Fire one unit's precomputed matches: the tail of `fire_batch` —
    /// reorder the extension-order tids into body-atom order, then
    /// `finish_firing` each match sequentially.
    pub(crate) fn apply_enumerated(
        &mut self,
        rule_idx: usize,
        atom_idx: usize,
        matches: Matches,
        delta: &Tuple,
        queue: &mut VecDeque<(TupleId, Tuple)>,
        result: &mut StepResult,
    ) -> Result<(), RuntimeError> {
        let plans = std::sync::Arc::clone(&self.plans);
        let plan = &plans[rule_idx].delta_plans[atom_idx];
        for (env, tids, sels) in matches {
            let mut body_tids = vec![0; tids.len()];
            body_tids[atom_idx] = tids[0];
            for (slot, ap) in plan.atoms.iter().enumerate() {
                body_tids[ap.atom_idx] = tids[slot + 1];
            }
            self.finish_firing(rule_idx, env, sels, body_tids, delta, queue, result)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpr_ndlog::Value;

    #[test]
    fn shard_assignment_is_stable_and_in_range() {
        let t = |table: &str, loc: i64| Tuple::new(table, Value::Int(loc), vec![]);
        for workers in 1..=8 {
            for tab in ["FlowTable", "Link", "Reach"] {
                for loc in 0..10 {
                    let a = shard_of(&t(tab, loc), workers);
                    let b = shard_of(&t(tab, loc), workers);
                    assert_eq!(a, b, "shard must be a pure function of (table, loc)");
                    assert!(a < workers);
                }
            }
        }
    }

    #[test]
    fn take_is_monotone_and_epoch_guarded() {
        let m = |n: u64| vec![(Env::new(), vec![n], vec![])];
        let mut e = RoundEnumeration {
            epoch: 7,
            units: vec![((0, 0), m(1)), ((0, 1), m(2)), ((2, 0), m(3))],
            cursor: 0,
        };
        // Consuming in order hands out each unit once.
        assert!(e.take((0, 0), 7).is_some());
        // Skipping a pending delta (key (0,1)) discards its unit.
        assert!(e.take((2, 0), 7).is_some());
        assert!(e.take((3, 0), 7).is_none(), "unknown keys miss");
        // After an epoch bump, nothing is handed out.
        let mut e2 = RoundEnumeration {
            epoch: 7,
            units: vec![((0, 0), m(1))],
            cursor: 0,
        };
        assert!(e2.take((0, 0), 8).is_none(), "stale epoch must miss");
    }
}
